// The refactor's keystone gate: the ComposedScheduler must reproduce the
// deleted per-policy classes bit-for-bit. The reference implementations
// below are verbatim copies of the historical PolicyGs/PolicyLs/PolicyLp
// (the classes the sealed golden corpus was generated with), injected into
// the engine through SimulationConfig::scheduler_factory; each test runs
// the same spec twice — once through the normal composed pipeline, once
// with the reference scheduler — and compares the full serialized result
// document for equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json.hpp"
#include "policy/pipeline.hpp"
#include "policy/queue.hpp"
#include "policy/scheduler.hpp"
#include "util/assert.hpp"

namespace mcsim {
namespace {

// ---------------------------------------------------------------------------
// Reference GS (one global queue; optional aggressive/EASY backfilling) —
// the historical PolicyGs, unchanged.
class ReferenceGs final : public Scheduler {
 public:
  ReferenceGs(SchedulerContext& context, PlacementRule placement,
              std::string display_name = "GS",
              BackfillMode backfill = BackfillMode::kNone,
              QueueDiscipline discipline = QueueDiscipline::kFcfs)
      : Scheduler(context, placement),
        display_name_(std::move(display_name)),
        backfill_(backfill) {
    queue_.set_order(make_job_order(discipline));
  }

  void submit(JobPtr job) override {
    job->queue_class = QueueClass::kGlobal;
    queue_.push(job);
    try_schedule();
  }

  void on_departure() override {
    if (backfill_ != BackfillMode::kNone) {
      const double now = context_.now();
      std::erase_if(running_,
                    [now](const RunningJob& r) { return r.end_time <= now; });
    }
    try_schedule();
  }

  [[nodiscard]] std::size_t queued_jobs() const override { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_length() const override {
    return queue_.size();
  }
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override {
    return {queue_.size()};
  }
  [[nodiscard]] std::string name() const override { return display_name_; }

 private:
  struct RunningJob {
    double end_time;
    std::uint32_t processors;
  };

  void start_at(std::size_t index, Allocation allocation) {
    JobPtr job = queue_.remove_at(index);
    if (backfill_ != BackfillMode::kNone) {
      running_.push_back(RunningJob{context_.now() + job->spec.gross_service_time,
                                    job->spec.total_size});
    }
    context_.start_job(job, std::move(allocation));
  }

  void try_schedule() {
    while (!queue_.empty()) {
      auto allocation = try_place(*queue_.front());
      if (!allocation) break;
      start_at(0, std::move(*allocation));
    }
    if (queue_.size() < 2) return;
    switch (backfill_) {
      case BackfillMode::kNone:
      case BackfillMode::kConservative:  // not part of the legacy reference
        break;
      case BackfillMode::kAggressive:
        backfill_aggressive();
        break;
      case BackfillMode::kEasy:
        backfill_easy();
        break;
    }
  }

  void backfill_aggressive() {
    std::size_t index = 1;
    while (index < queue_.size()) {
      auto allocation = try_place(*queue_.at(index));
      if (allocation) {
        start_at(index, std::move(*allocation));
      } else {
        ++index;
      }
    }
  }

  [[nodiscard]] std::pair<double, std::uint32_t> head_reservation() const {
    MCSIM_ASSERT(!queue_.empty());
    const std::uint32_t needed = queue_.front()->spec.total_size;
    std::uint32_t idle = context_.system().total_idle();
    MCSIM_ASSERT(idle < needed || !running_.empty());

    std::vector<RunningJob> by_end = running_;
    std::sort(by_end.begin(), by_end.end(),
              [](const RunningJob& a, const RunningJob& b) {
                return a.end_time < b.end_time;
              });
    for (const RunningJob& job : by_end) {
      idle += job.processors;
      if (idle >= needed) {
        return {job.end_time, idle - needed};
      }
    }
    return {std::numeric_limits<double>::infinity(), 0};
  }

  void backfill_easy() {
    const auto [t_res, extra] = head_reservation();
    const double now = context_.now();
    std::uint32_t spare = extra;
    std::size_t index = 1;
    while (index < queue_.size()) {
      const Job& job = *queue_.at(index);
      const bool ends_in_time = now + job.spec.gross_service_time <= t_res;
      const bool within_spare = job.spec.total_size <= spare;
      if (!ends_in_time && !within_spare) {
        ++index;
        continue;
      }
      auto allocation = try_place(*queue_.at(index));
      if (!allocation) {
        ++index;
        continue;
      }
      if (!ends_in_time) spare -= job.spec.total_size;
      start_at(index, std::move(*allocation));
    }
  }

  JobQueue queue_;
  std::string display_name_;
  BackfillMode backfill_;
  std::vector<RunningJob> running_;
};

// ---------------------------------------------------------------------------
// Reference LS (per-cluster queues, rotation with the disable protocol) —
// the historical PolicyLs, unchanged.
class ReferenceLs final : public Scheduler {
 public:
  // One deviation from the historical class: the display name is a
  // parameter (the legacy hard-coded "LS"), so tests of non-default
  // placements can match the composed scheduler's richer name.
  ReferenceLs(SchedulerContext& context, PlacementRule placement,
              std::string display_name = "LS")
      : Scheduler(context, placement), display_name_(std::move(display_name)) {
    const std::uint32_t n = context_.system().num_clusters();
    queues_.resize(n);
    visit_order_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) visit_order_.push_back(i);
  }

  void submit(JobPtr job) override {
    const std::uint32_t qid = job->spec.origin_queue;
    MCSIM_REQUIRE(qid < queues_.size(), "origin queue out of range");
    job->queue_class = QueueClass::kLocal;
    queues_[qid].push(job);
    try_schedule();
  }

  void on_departure() override {
    for (std::uint32_t qid : disabled_order_) {
      queues_[qid].enable();
      visit_order_.push_back(qid);
    }
    disabled_order_.clear();
    try_schedule();
  }

  [[nodiscard]] std::size_t queued_jobs() const override {
    std::size_t total = 0;
    for (const auto& queue : queues_) total += queue.size();
    return total;
  }
  [[nodiscard]] std::size_t max_queue_length() const override {
    std::size_t longest = 0;
    for (const auto& queue : queues_) longest = std::max(longest, queue.size());
    return longest;
  }
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override {
    std::vector<std::size_t> lengths;
    lengths.reserve(queues_.size());
    for (const auto& queue : queues_) lengths.push_back(queue.size());
    return lengths;
  }
  [[nodiscard]] std::string name() const override { return display_name_; }

 private:
  void try_schedule() {
    bool any_started = true;
    while (any_started) {
      any_started = false;
      const std::vector<std::uint32_t> round = visit_order_;
      for (std::uint32_t qid : round) {
        JobQueue& queue = queues_[qid];
        if (!queue.enabled() || queue.empty()) continue;
        Job& head = *queue.front();
        auto allocation = head.spec.needs_coallocation()
                              ? try_place(head)
                              : try_place_local(head, qid);
        if (allocation) {
          context_.start_job(queue.pop(), std::move(*allocation));
          any_started = true;
        } else {
          disable_queue(qid);
        }
      }
    }
  }

  void disable_queue(std::uint32_t qid) {
    MCSIM_ASSERT(queues_[qid].enabled());
    queues_[qid].disable();
    disabled_order_.push_back(qid);
    visit_order_.erase(
        std::remove(visit_order_.begin(), visit_order_.end(), qid),
        visit_order_.end());
  }

  std::vector<JobQueue> queues_;
  std::vector<std::uint32_t> visit_order_;
  std::vector<std::uint32_t> disabled_order_;
  std::string display_name_;
};

// ---------------------------------------------------------------------------
// Reference LP (local queues with priority over one global queue) — the
// historical PolicyLp, unchanged.
class ReferenceLp final : public Scheduler {
 public:
  // Display name parameterised as in ReferenceLs (the legacy hard-coded
  // "LP"); the scheduling protocol is the historical one, unchanged.
  ReferenceLp(SchedulerContext& context, PlacementRule placement,
              std::string display_name = "LP")
      : Scheduler(context, placement), display_name_(std::move(display_name)) {
    locals_.resize(context_.system().num_clusters());
  }

  void submit(JobPtr job) override {
    if (job->spec.needs_coallocation()) {
      job->queue_class = QueueClass::kGlobal;
      global_.push(job);
    } else {
      const std::uint32_t qid = job->spec.origin_queue;
      MCSIM_REQUIRE(qid < locals_.size(), "origin queue out of range");
      job->queue_class = QueueClass::kLocal;
      locals_[qid].push(job);
    }
    try_schedule();
  }

  void on_departure() override {
    global_.enable();
    for (auto& queue : locals_) queue.enable();
    try_schedule();
  }

  [[nodiscard]] std::size_t queued_jobs() const override {
    std::size_t total = global_.size();
    for (const auto& queue : locals_) total += queue.size();
    return total;
  }
  [[nodiscard]] std::size_t max_queue_length() const override {
    std::size_t longest = global_.size();
    for (const auto& queue : locals_) longest = std::max(longest, queue.size());
    return longest;
  }
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override {
    std::vector<std::size_t> lengths;
    lengths.reserve(locals_.size() + 1);
    for (const auto& queue : locals_) lengths.push_back(queue.size());
    lengths.push_back(global_.size());
    return lengths;
  }
  [[nodiscard]] std::string name() const override { return display_name_; }

 private:
  [[nodiscard]] bool some_local_empty() const {
    return std::any_of(locals_.begin(), locals_.end(),
                       [](const JobQueue& q) { return q.empty(); });
  }

  void try_schedule() {
    bool any_started = true;
    while (any_started) {
      any_started = false;

      if (global_.enabled() && !global_.empty() && some_local_empty()) {
        auto allocation = try_place(*global_.front());
        if (allocation) {
          context_.start_job(global_.pop(), std::move(*allocation));
          any_started = true;
        } else {
          global_.disable();
        }
      }

      for (std::uint32_t qid = 0; qid < locals_.size(); ++qid) {
        JobQueue& queue = locals_[qid];
        if (!queue.enabled() || queue.empty()) continue;
        auto allocation = try_place_local(*queue.front(), qid);
        if (allocation) {
          context_.start_job(queue.pop(), std::move(*allocation));
          any_started = true;
        } else {
          queue.disable();
        }
      }
    }
  }

  std::vector<JobQueue> locals_;
  JobQueue global_;
  std::string display_name_;
};

// ---------------------------------------------------------------------------

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(SchedulerContext&)>;

/// Run `spec` and serialize the complete result document. With a factory
/// the engine uses the injected reference scheduler; without, the normal
/// composed pipeline.
std::string run_and_serialize(const exp::ScenarioSpec& spec,
                              SchedulerFactory factory = nullptr) {
  SimulationConfig config = exp::to_simulation_config(spec);
  config.scheduler_factory = std::move(factory);
  MulticlusterSimulation sim(std::move(config));
  const SimulationResult result = sim.run();
  std::ostringstream out;
  obs::JsonWriter json(out);
  write_result_json(json, result);
  return out.str();
}

exp::ScenarioSpec equivalence_spec(PolicyKind kind) {
  exp::ScenarioSpec spec;
  spec.policy = kind;
  spec.utilization = 0.60;
  spec.sim_jobs = 4000;
  spec.seed = 20030622;
  return spec;
}

TEST(PolicyEquivalence, ComposedGsMatchesReferenceGs) {
  const auto spec = equivalence_spec(PolicyKind::kGS);
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(context,
                                                   PlacementRule::kWorstFit);
            }));
}

TEST(PolicyEquivalence, ComposedScMatchesReferenceGsOnOneCluster) {
  const auto spec = equivalence_spec(PolicyKind::kSC);
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(
                  context, PlacementRule::kWorstFit, "SC");
            }));
}

TEST(PolicyEquivalence, ComposedLsMatchesReferenceLs) {
  const auto spec = equivalence_spec(PolicyKind::kLS);
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceLs>(context,
                                                   PlacementRule::kWorstFit);
            }));
}

TEST(PolicyEquivalence, ComposedLpMatchesReferenceLp) {
  const auto spec = equivalence_spec(PolicyKind::kLP);
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceLp>(context,
                                                   PlacementRule::kWorstFit);
            }));
}

TEST(PolicyEquivalence, ComposedUnbalancedLsMatchesReferenceLs) {
  auto spec = equivalence_spec(PolicyKind::kLS);
  spec.balanced_queues = false;
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceLs>(context,
                                                   PlacementRule::kWorstFit);
            }));
}

TEST(PolicyEquivalence, ComposedSjfGsMatchesReferenceGs) {
  auto spec = equivalence_spec(PolicyKind::kGS);
  spec.discipline = QueueDiscipline::kShortestJobFirst;
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(
                  context, PlacementRule::kWorstFit, "GS+sjf",
                  BackfillMode::kNone, QueueDiscipline::kShortestJobFirst);
            }));
}

TEST(PolicyEquivalence, ComposedAggressiveBackfillMatchesReferenceGs) {
  auto spec = equivalence_spec(PolicyKind::kGS);
  spec.backfill = BackfillMode::kAggressive;
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(
                  context, PlacementRule::kWorstFit, "GS+aggressive-bf",
                  BackfillMode::kAggressive);
            }));
}

TEST(PolicyEquivalence, ComposedEasyBackfillMatchesReferenceGs) {
  auto spec = equivalence_spec(PolicyKind::kGS);
  spec.backfill = BackfillMode::kEasy;
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(
                  context, PlacementRule::kWorstFit, "GS+easy-bf",
                  BackfillMode::kEasy);
            }));
}

TEST(PolicyEquivalence, ComposedEasyBackfillOnScMatchesReferenceGs) {
  auto spec = equivalence_spec(PolicyKind::kSC);
  spec.backfill = BackfillMode::kEasy;
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [](SchedulerContext& context) {
              return std::make_unique<ReferenceGs>(
                  context, PlacementRule::kWorstFit, "SC+easy-bf",
                  BackfillMode::kEasy);
            }));
}

TEST(PolicyEquivalence, ComposedFirstFitLpMatchesReferenceLp) {
  auto spec = equivalence_spec(PolicyKind::kLP);
  spec.placement = PlacementRule::kFirstFit;
  const std::string name = scheduler_display_name(spec.policy, spec.pipeline());
  EXPECT_EQ(run_and_serialize(spec),
            run_and_serialize(spec, [&name](SchedulerContext& context) {
              return std::make_unique<ReferenceLp>(
                  context, PlacementRule::kFirstFit, name);
            }));
}

}  // namespace
}  // namespace mcsim
