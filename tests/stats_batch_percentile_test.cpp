#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/batch_means.hpp"
#include "stats/percentile.hpp"
#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(BatchMeans, BatchesCompleteAtBatchSize) {
  BatchMeans bm(3);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) bm.add(x);
  ASSERT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.means()[0], 2.0);
  EXPECT_DOUBLE_EQ(bm.means()[1], 5.0);
  EXPECT_EQ(bm.total_observations(), 7u);
}

TEST(BatchMeans, GrandMeanOverCompleteBatches) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0, 100.0}) bm.add(x);  // 100 in incomplete batch
  EXPECT_DOUBLE_EQ(bm.grand_mean(), 4.0);
}

TEST(BatchMeans, GrandMeanFallsBackToRawMean) {
  BatchMeans bm(100);
  bm.add(2.0);
  bm.add(4.0);
  EXPECT_DOUBLE_EQ(bm.grand_mean(), 3.0);
}

TEST(BatchMeans, ConfidenceUsesBatchMeans) {
  BatchMeans bm(10);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) bm.add(rng.uniform());
  const auto ci = bm.confidence();
  EXPECT_NEAR(ci.mean, 0.5, 0.05);
  EXPECT_GT(ci.halfwidth, 0.0);
  EXPECT_LT(ci.halfwidth, 0.1);
}

TEST(BatchMeans, WideCiForCorrelatedDataVsIid) {
  // A slowly-wandering series has batch means with larger spread than the
  // raw i.i.d. CI would suggest; the batch CI must be wider than the naive
  // raw CI computed from all observations.
  Rng rng(42);
  BatchMeans bm(50);
  double level = 0.0;
  RunningStats raw;
  for (int i = 0; i < 5000; ++i) {
    level = 0.999 * level + 0.05 * (rng.uniform() - 0.5);
    bm.add(level);
    raw.add(level);
  }
  EXPECT_GT(bm.confidence().halfwidth, mean_confidence(raw).halfwidth);
}

TEST(BatchMeans, Lag1AutocorrelationNearZeroForIid) {
  Rng rng(5);
  BatchMeans bm(20);
  for (int i = 0; i < 4000; ++i) bm.add(rng.uniform());
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.25);
}

TEST(BatchMeans, ZeroBatchSizeThrows) { EXPECT_THROW(BatchMeans(0), std::invalid_argument); }

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_NEAR(q.value(), 20.0, 10.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(31);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, P95OfUniform) {
  P2Quantile q(0.95);
  Rng rng(33);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.95, 0.02);
}

TEST(P2Quantile, P95OfExponential) {
  P2Quantile q(0.95);
  Rng rng(37);
  for (int i = 0; i < 200000; ++i) q.add(rng.exponential_mean(1.0));
  EXPECT_NEAR(q.value(), -std::log(0.05), 0.15);  // ~2.996
}

TEST(P2Quantile, InvalidQuantileThrows) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(ExactQuantile, InterpolatesLinearly) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 0.5), 2.5);
  EXPECT_NEAR(exact_quantile(sorted, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(ExactQuantile, SingleElement) {
  EXPECT_DOUBLE_EQ(exact_quantile({7.0}, 0.5), 7.0);
}

TEST(ExactQuantile, EmptyThrows) {
  EXPECT_THROW(exact_quantile({}, 0.5), std::invalid_argument);
}

TEST(P2Quantile, AgreesWithExactOnSkewedData) {
  Rng rng(77);
  P2Quantile p2(0.9);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    const double x = std::pow(rng.uniform(), 3.0);  // skewed toward 0
    p2.add(x);
    samples.push_back(x);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(p2.value(), exact_quantile(samples, 0.9), 0.02);
}

}  // namespace
}  // namespace mcsim
