#include <gtest/gtest.h>

#include <vector>

#include "stats/utilization.hpp"
#include "stats/warmup.hpp"
#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(Mser, EmptySeriesGivesZero) {
  EXPECT_EQ(mser({}).truncation_point, 0u);
}

TEST(Mser, StationarySeriesNeedsNoTruncation) {
  Rng rng(1);
  std::vector<double> obs;
  for (int i = 0; i < 1000; ++i) obs.push_back(rng.uniform());
  EXPECT_LE(mser(obs, 5).truncation_point, 100u);
}

TEST(Mser, DetectsInitialTransient) {
  // A strong transient: first 200 observations around 100, rest around 1.
  Rng rng(2);
  std::vector<double> obs;
  for (int i = 0; i < 200; ++i) obs.push_back(100.0 + rng.uniform());
  for (int i = 0; i < 800; ++i) obs.push_back(1.0 + rng.uniform());
  const auto result = mser(obs, 5);
  EXPECT_GE(result.truncation_point, 190u);
  EXPECT_LE(result.truncation_point, 260u);
}

TEST(Mser, TruncationCappedAtHalf) {
  // Linearly decreasing series: MSER wants to cut everything; the standard
  // rule caps the search at half the series.
  std::vector<double> obs;
  for (int i = 0; i < 100; ++i) obs.push_back(100.0 - i);
  EXPECT_LE(mser(obs, 5).truncation_point, 50u);
}

TEST(Mser, ZeroBatchSizeThrows) {
  EXPECT_THROW(mser({1.0, 2.0}, 0), std::invalid_argument);
}

TEST(UtilizationTracker, SingleJobBusyFraction) {
  UtilizationTracker u(10, 0.0);
  u.on_job_start(0.0, 5, 4.0, 4.0);
  u.on_job_finish(4.0, 5);
  // 5 of 10 processors busy for 4 of 8 seconds -> 0.25.
  EXPECT_DOUBLE_EQ(u.busy_fraction(8.0), 0.25);
}

TEST(UtilizationTracker, GrossAndNetFromStartedWork) {
  UtilizationTracker u(100, 0.0);
  // A multi-component job: 40 procs, net 10 s, gross 12.5 s.
  u.on_job_start(0.0, 40, 12.5, 10.0);
  u.on_job_finish(12.5, 40);
  const double t = 50.0;
  EXPECT_DOUBLE_EQ(u.gross_utilization(t), 40 * 12.5 / (100 * t));
  EXPECT_DOUBLE_EQ(u.net_utilization(t), 40 * 10.0 / (100 * t));
  EXPECT_GT(u.gross_utilization(t), u.net_utilization(t));
}

TEST(UtilizationTracker, OverlappingJobs) {
  UtilizationTracker u(10, 0.0);
  u.on_job_start(0.0, 4, 10.0, 10.0);
  u.on_job_start(5.0, 6, 5.0, 5.0);
  EXPECT_EQ(u.busy_processors(), 10u);
  u.on_job_finish(10.0, 4);
  u.on_job_finish(10.0, 6);
  // Integral: 4*5 + 10*5 = 70 over 10 s of 10 procs -> 0.7.
  EXPECT_DOUBLE_EQ(u.busy_fraction(10.0), 0.7);
}

TEST(UtilizationTracker, ResetAtDropsHistoryKeepsOccupancy) {
  UtilizationTracker u(10, 0.0);
  u.on_job_start(0.0, 10, 100.0, 100.0);
  u.reset_at(50.0);
  // Still fully busy after the reset.
  EXPECT_DOUBLE_EQ(u.busy_fraction(60.0), 1.0);
  // Started-work accounting restarted.
  EXPECT_DOUBLE_EQ(u.gross_utilization(60.0), 0.0);
}

TEST(UtilizationTracker, OverAllocationThrows) {
  UtilizationTracker u(8, 0.0);
  u.on_job_start(0.0, 8, 1.0, 1.0);
  EXPECT_THROW(u.on_job_start(0.5, 1, 1.0, 1.0), std::invalid_argument);
}

TEST(UtilizationTracker, OverReleaseThrows) {
  UtilizationTracker u(8, 0.0);
  u.on_job_start(0.0, 2, 1.0, 1.0);
  EXPECT_THROW(u.on_job_finish(1.0, 3), std::invalid_argument);
}

TEST(UtilizationTracker, ZeroProcessorsThrows) {
  EXPECT_THROW(UtilizationTracker(0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
