// The golden-run gate (exp/golden.hpp): digests, the two comparison
// tiers, tamper detection, the verify driver, and the checked-in corpus.
//
// The properties pinned here are the ones CI's `mcsim verify` job rests
// on: an observation is deterministic and survives the golden round trip
// for every policy; changing a digit of a pinned statistic fails the
// verify with the scenario and the field named; a text-only edit still
// trips the digest seal; and every scenario under data/scenarios/ has a
// well-formed golden, so a new scenario cannot land unpinned.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/golden.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"

namespace mcsim {
namespace {

namespace fs = std::filesystem;

exp::ScenarioSpec tiny_point(PolicyKind policy) {
  exp::ScenarioSpec spec;
  spec.policy = policy;
  spec.mode = exp::RunMode::kPoint;
  spec.utilization = 0.40;
  spec.sim_jobs = 1200;
  spec.seed = 7;
  return spec;
}

std::string golden_text_for(const exp::ScenarioSpec& spec,
                            const std::string& scenario_file) {
  std::ostringstream out;
  exp::write_golden_file(out, spec, scenario_file,
                         exp::canonical_observation(spec));
  return out.str();
}

// A scratch directory pair (scenarios/ + golden/) for driver tests.
class VerifyDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test scratch: ctest runs every case as its own process, so a
    // shared path would let parallel cases clobber each other.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            (std::string("mcsim_golden_test_") + info->name());
    fs::remove_all(root_);
    scenario_dir_ = (root_ / "scenarios").string();
    golden_dir_ = (root_ / "golden").string();
    fs::create_directories(scenario_dir_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void add_scenario(const std::string& name, const exp::ScenarioSpec& spec) {
    std::ofstream out(fs::path(scenario_dir_) / name);
    exp::write_scenario_file(out, spec);
  }

  static void rewrite(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  }

  fs::path root_;
  std::string scenario_dir_;
  std::string golden_dir_;
};

TEST(Fnv1a64, KnownVectors) {
  // Reference values of the 64-bit FNV-1a offset basis and of "a".
  EXPECT_EQ(exp::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(exp::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(exp::fnv1a64("abc"), exp::fnv1a64("abd"));
}

TEST(CompareMode, NameParseRoundTrip) {
  EXPECT_EQ(exp::parse_compare_mode("bit-exact"), exp::CompareMode::kBitExact);
  EXPECT_EQ(exp::parse_compare_mode("STATISTICAL"), exp::CompareMode::kStatistical);
  EXPECT_STREQ(exp::compare_mode_name(exp::CompareMode::kBitExact), "bit-exact");
  EXPECT_THROW(exp::parse_compare_mode("fuzzy"), std::invalid_argument);
}

TEST(Observation, DeterministicAcrossRepeatedRuns) {
  const exp::ScenarioSpec spec = tiny_point(PolicyKind::kLS);
  EXPECT_EQ(exp::canonical_observation(spec), exp::canonical_observation(spec));
}

// The golden round trip must hold for every policy the paper compares —
// GS, LS, LP and SC exercise different queue structures, placement paths
// and event mixes.
TEST(Observation, GoldenSelfVerifiesForEveryPolicy) {
  for (const auto policy : {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP,
                            PolicyKind::kSC}) {
    const exp::ScenarioSpec spec = tiny_point(policy);
    const std::string observation = exp::canonical_observation(spec);
    const obs::JsonValue got = obs::parse_json(observation);

    const obs::JsonValue golden =
        obs::parse_json(golden_text_for(spec, "tiny.json"));
    ASSERT_TRUE(golden.is_object());
    EXPECT_EQ(golden.at("schema").as_string(), "mcsim-golden");
    const obs::JsonValue& observed = golden.at("observed");

    const exp::CompareOutcome outcome =
        exp::compare_observations(observed, got, exp::GoldenOptions{});
    EXPECT_TRUE(outcome.match) << policy_name(policy) << ": "
                               << outcome.first.describe();
    // Writing and re-reading the observation must not disturb the digest:
    // the seal is over flattened path=value lines, not file formatting.
    EXPECT_EQ(golden.at("digest").as_string(), exp::observation_digest(observed));
    EXPECT_EQ(golden.at("digest").as_string(), exp::observation_digest(got));
  }
}

TEST(Observation, FlattenProducesPathValueLines) {
  const obs::JsonValue value =
      obs::parse_json(R"({"a": 1, "b": {"c": [1.5, true]}, "d": "x"})");
  EXPECT_EQ(exp::flatten_observation(value),
            "a=1\nb.c[0]=1.5\nb.c[1]=true\nd=\"x\"\n");
}

TEST(Compare, BitExactFlagsOneUlpAndReportsDistance) {
  const obs::JsonValue expected = obs::parse_json(R"({"x": 100.00000000000001})");
  const obs::JsonValue got = obs::parse_json(R"({"x": 100.00000000000003})");
  exp::GoldenOptions options;  // bit-exact
  const exp::CompareOutcome outcome =
      exp::compare_observations(expected, got, options);
  ASSERT_FALSE(outcome.match);
  EXPECT_EQ(outcome.first.path, "x");
  EXPECT_GE(outcome.first.ulp, 1);
  EXPECT_LE(outcome.first.ulp, 2);
  const std::string text = outcome.first.describe();
  EXPECT_NE(text.find("x: expected"), std::string::npos);
  EXPECT_NE(text.find("ULP"), std::string::npos);
}

TEST(Compare, BitExactAcceptsDifferentSpellingOfSameDouble) {
  // 0.5 and 5e-1 parse to identical bits; the compare is on values.
  const obs::JsonValue expected = obs::parse_json(R"({"x": 0.5})");
  const obs::JsonValue got = obs::parse_json(R"({"x": 5e-1})");
  EXPECT_TRUE(
      exp::compare_observations(expected, got, exp::GoldenOptions{}).match);
}

TEST(Compare, StatisticalToleranceIsHonored) {
  const obs::JsonValue expected = obs::parse_json(R"({"x": 100.0})");
  const obs::JsonValue got = obs::parse_json(R"({"x": 100.00002})");

  exp::GoldenOptions loose;
  loose.mode = exp::CompareMode::kStatistical;
  loose.rel_tol = 1e-6;  // tolerance 1e-4 at magnitude 100 — passes
  EXPECT_TRUE(exp::compare_observations(expected, got, loose).match);

  exp::GoldenOptions tight = loose;
  tight.rel_tol = 1e-12;
  tight.abs_tol = 0.0;
  const exp::CompareOutcome outcome =
      exp::compare_observations(expected, got, tight);
  ASSERT_FALSE(outcome.match);
  EXPECT_EQ(outcome.first.path, "x");

  // Bit-exact always fails on a real difference.
  EXPECT_FALSE(
      exp::compare_observations(expected, got, exp::GoldenOptions{}).match);
}

TEST(Compare, MissingExtraAndStructuralDivergences) {
  const exp::GoldenOptions options;
  const obs::JsonValue base = obs::parse_json(R"({"a": 1, "b": [1, 2]})");

  const auto missing = exp::compare_observations(
      base, obs::parse_json(R"({"b": [1, 2]})"), options);
  ASSERT_FALSE(missing.match);
  EXPECT_EQ(missing.first.path, "a");
  EXPECT_EQ(missing.first.got, "<missing key>");

  const auto extra = exp::compare_observations(
      base, obs::parse_json(R"({"a": 1, "b": [1, 2], "c": 3})"), options);
  ASSERT_FALSE(extra.match);
  EXPECT_EQ(extra.first.path, "c");
  EXPECT_EQ(extra.first.expected, "<missing key>");

  const auto shorter = exp::compare_observations(
      base, obs::parse_json(R"({"a": 1, "b": [1]})"), options);
  ASSERT_FALSE(shorter.match);
  EXPECT_EQ(shorter.first.path, "b.length");

  const auto kind = exp::compare_observations(
      base, obs::parse_json(R"({"a": "1", "b": [1, 2]})"), options);
  ASSERT_FALSE(kind.match);
  EXPECT_EQ(kind.first.path, "a");
  EXPECT_EQ(kind.first.expected, "number");
  EXPECT_EQ(kind.first.got, "string");
}

TEST_F(VerifyDriverTest, UpdateThenVerifyPasses) {
  exp::ScenarioSpec spec = tiny_point(PolicyKind::kGS);
  spec.sim_jobs = 800;
  add_scenario("tiny_gs.json", spec);

  exp::VerifyOptions options;
  options.parallelism = 1;
  options.update = true;
  const exp::VerifyReport updated =
      exp::verify_goldens(scenario_dir_, golden_dir_, options);
  ASSERT_EQ(updated.verdicts.size(), 1u);
  EXPECT_EQ(updated.verdicts[0].status, exp::VerifyStatus::kUpdated);
  EXPECT_TRUE(updated.ok());

  options.update = false;
  const exp::VerifyReport verified =
      exp::verify_goldens(scenario_dir_, golden_dir_, options);
  ASSERT_EQ(verified.verdicts.size(), 1u);
  EXPECT_EQ(verified.verdicts[0].status, exp::VerifyStatus::kPass);
  EXPECT_EQ(verified.verdicts[0].scenario_file, "tiny_gs.json");
  EXPECT_TRUE(verified.ok());
}

TEST_F(VerifyDriverTest, TamperedStatisticFailsNamingScenarioAndField) {
  exp::ScenarioSpec spec = tiny_point(PolicyKind::kGS);
  spec.sim_jobs = 800;
  add_scenario("tiny_gs.json", spec);
  exp::VerifyOptions options;
  options.parallelism = 1;
  options.update = true;
  exp::verify_goldens(scenario_dir_, golden_dir_, options);

  // Flip the leading digit of the pinned mean response — a real value
  // change, in both tiers' terms.
  const std::string golden_path =
      exp::golden_path_for(golden_dir_, "tiny_gs.json");
  std::string text = slurp(golden_path);
  const std::size_t key = text.find("\"mean_response\": ");
  ASSERT_NE(key, std::string::npos);
  const std::size_t digit = key + std::string("\"mean_response\": ").size();
  text[digit] = text[digit] == '9' ? '8' : static_cast<char>(text[digit] + 1);
  rewrite(golden_path, text);

  options.update = false;
  const exp::VerifyReport report =
      exp::verify_goldens(scenario_dir_, golden_dir_, options);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.verdicts[0].status, exp::VerifyStatus::kFail);
  EXPECT_EQ(report.verdicts[0].scenario_file, "tiny_gs.json");
  EXPECT_NE(report.verdicts[0].detail.find("mean_response"), std::string::npos)
      << report.verdicts[0].detail;

  // The statistical tier must also reject a leading-digit change.
  options.compare.mode = exp::CompareMode::kStatistical;
  EXPECT_FALSE(exp::verify_goldens(scenario_dir_, golden_dir_, options).ok());
}

TEST_F(VerifyDriverTest, BrokenDigestSealFailsEvenWhenValuesMatch) {
  exp::ScenarioSpec spec = tiny_point(PolicyKind::kSC);
  spec.sim_jobs = 800;
  add_scenario("tiny_sc.json", spec);
  exp::VerifyOptions options;
  options.parallelism = 1;
  options.update = true;
  exp::verify_goldens(scenario_dir_, golden_dir_, options);

  const std::string golden_path =
      exp::golden_path_for(golden_dir_, "tiny_sc.json");
  std::string text = slurp(golden_path);
  const std::size_t seal = text.find("fnv1a64:");
  ASSERT_NE(seal, std::string::npos);
  const std::size_t digit = seal + std::string("fnv1a64:").size();
  text[digit] = text[digit] == 'f' ? '0' : 'f';
  rewrite(golden_path, text);

  options.update = false;
  const exp::VerifyReport report =
      exp::verify_goldens(scenario_dir_, golden_dir_, options);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].status, exp::VerifyStatus::kFail);
  EXPECT_NE(report.verdicts[0].detail.find("digest seal"), std::string::npos)
      << report.verdicts[0].detail;
}

TEST_F(VerifyDriverTest, MissingAndOrphanGoldensAreReported) {
  exp::ScenarioSpec spec = tiny_point(PolicyKind::kLP);
  spec.sim_jobs = 800;
  add_scenario("tiny_lp.json", spec);
  fs::create_directories(golden_dir_);
  rewrite((fs::path(golden_dir_) / "stale.golden.json").string(), "{}\n");

  exp::VerifyOptions options;
  options.parallelism = 1;
  const exp::VerifyReport report =
      exp::verify_goldens(scenario_dir_, golden_dir_, options);
  ASSERT_EQ(report.verdicts.size(), 2u);
  EXPECT_EQ(report.verdicts[0].status, exp::VerifyStatus::kMissingGolden);
  EXPECT_EQ(report.verdicts[0].scenario_file, "tiny_lp.json");
  EXPECT_EQ(report.verdicts[1].status, exp::VerifyStatus::kOrphanGolden);
  EXPECT_EQ(report.verdicts[1].scenario_file, "stale.golden.json");
  EXPECT_FALSE(report.ok());
}

// -- the checked-in corpus --------------------------------------------------

#ifdef MCSIM_SCENARIO_DIR
#ifdef MCSIM_GOLDEN_DIR

// Every scenario must land with its golden: a new evaluation point cannot
// enter data/scenarios/ unpinned.
TEST(GoldenCorpus, EveryScenarioHasAGolden) {
  std::size_t scenarios = 0;
  for (const auto& entry : fs::directory_iterator(MCSIM_SCENARIO_DIR)) {
    if (entry.path().extension() != ".json") continue;
    ++scenarios;
    const std::string golden = exp::golden_path_for(
        MCSIM_GOLDEN_DIR, entry.path().filename().string());
    EXPECT_TRUE(fs::exists(golden))
        << entry.path().filename().string() << " has no golden at " << golden
        << " — run `mcsim verify data/golden --update` and commit the result";
  }
  EXPECT_GE(scenarios, 16u);
}

// ... and every golden must still name a live scenario and carry an
// intact digest seal. This is pure parsing (no simulation), so the whole
// corpus is checked on every test run.
TEST(GoldenCorpus, GoldenDocumentsAreWellFormedAndSealed) {
  std::size_t goldens = 0;
  for (const auto& entry : fs::directory_iterator(MCSIM_GOLDEN_DIR)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".golden.json")) continue;
    ++goldens;
    const obs::JsonValue document = obs::parse_json_file(entry.path().string());
    ASSERT_TRUE(document.is_object()) << name;
    EXPECT_EQ(document.at("schema").as_string(), "mcsim-golden") << name;
    EXPECT_EQ(document.at("schema_version").as_int(), exp::kGoldenSchemaVersion)
        << name;
    const std::string scenario = document.at("scenario_file").as_string();
    EXPECT_TRUE(fs::exists(fs::path(MCSIM_SCENARIO_DIR) / scenario))
        << name << " points at missing scenario " << scenario;
    EXPECT_EQ(document.at("digest").as_string(),
              exp::observation_digest(document.at("observed")))
        << name << ": digest seal broken — regenerate, don't hand-edit";
  }
  EXPECT_GE(goldens, 16u);
}

#endif  // MCSIM_GOLDEN_DIR
#endif  // MCSIM_SCENARIO_DIR

}  // namespace
}  // namespace mcsim
