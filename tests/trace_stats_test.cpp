#include <gtest/gtest.h>

#include "trace/empirical.hpp"
#include "trace/trace_stats.hpp"

namespace mcsim {
namespace {

std::vector<TraceRecord> small_trace() {
  std::vector<TraceRecord> records;
  auto add = [&](std::uint64_t id, double submit, double start, double end,
                 std::uint32_t procs, std::uint32_t user) {
    TraceRecord rec;
    rec.job_id = id;
    rec.submit_time = submit;
    rec.wait_time = start - submit;
    rec.run_time = end - start;
    rec.processors = procs;
    rec.user_id = user;
    records.push_back(rec);
  };
  add(1, 0.0, 0.0, 100.0, 1, 0);     // service 100
  add(2, 10.0, 20.0, 320.0, 2, 0);   // service 300
  add(3, 20.0, 30.0, 930.0, 64, 1);  // service 900
  add(4, 30.0, 40.0, 1240.0, 64, 2); // service 1200 (over the 900 cut)
  add(5, 40.0, 50.0, 150.0, 7, 1);   // service 100
  return records;
}

TEST(TraceSummary, CountsUsersJobsAndSizes) {
  const auto summary = summarize_trace(small_trace());
  EXPECT_EQ(summary.job_count, 5u);
  EXPECT_EQ(summary.user_count, 3u);
  EXPECT_EQ(summary.distinct_sizes, 4u);  // 1, 2, 7, 64
  EXPECT_EQ(summary.min_size, 1u);
  EXPECT_EQ(summary.max_size, 64u);
}

TEST(TraceSummary, PowerOfTwoFraction) {
  // 1, 2, 64, 64 are powers of two; 7 is not.
  EXPECT_DOUBLE_EQ(summarize_trace(small_trace()).power_of_two_fraction, 0.8);
}

TEST(TraceSummary, MeanSize) {
  EXPECT_DOUBLE_EQ(summarize_trace(small_trace()).mean_size, (1 + 2 + 64 + 64 + 7) / 5.0);
}

TEST(TraceSummary, FractionUnder15Min) {
  // Services: 100, 300, 900, 1200, 100 -> strictly under 900: 3 of 5.
  EXPECT_DOUBLE_EQ(summarize_trace(small_trace()).fraction_under_15min, 0.6);
}

TEST(TraceSummary, DurationSpansSubmitToLastEnd) {
  EXPECT_DOUBLE_EQ(summarize_trace(small_trace()).duration, 1240.0);
}

TEST(TraceSummary, EmptyTraceIsSafe) {
  const auto summary = summarize_trace({});
  EXPECT_EQ(summary.job_count, 0u);
  EXPECT_EQ(summary.user_count, 0u);
}

TEST(JobSizeDensity, ExactCounts) {
  const auto density = job_size_density(small_trace());
  EXPECT_EQ(density.count(64), 2u);
  EXPECT_EQ(density.count(1), 1u);
  EXPECT_EQ(density.count(3), 0u);
  EXPECT_EQ(density.total(), 5u);
}

TEST(ServiceTimeDensity, BinsUpToCut) {
  const auto density = service_time_density(small_trace(), 900.0, 9);
  // Services 100, 100 fall in bin [100,200); 300 in [300,400).
  EXPECT_EQ(density.bin(1), 2u);
  EXPECT_EQ(density.bin(3), 1u);
  EXPECT_EQ(density.overflow(), 2u);  // 900 (== hi, exclusive) and 1200
}

TEST(FractionWithSize, MatchesCounts) {
  EXPECT_DOUBLE_EQ(fraction_with_size(small_trace(), 64), 0.4);
  EXPECT_DOUBLE_EQ(fraction_with_size(small_trace(), 128), 0.0);
  EXPECT_DOUBLE_EQ(fraction_with_size({}, 64), 0.0);
}

TEST(CutBySize, FiltersAndKeepsOrder) {
  const auto cut = cut_by_size(small_trace(), 7);
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut[0].processors, 1u);
  EXPECT_EQ(cut[2].processors, 7u);
}

TEST(CutByService, Filters) {
  const auto cut = cut_by_service(small_trace(), 900.0);
  EXPECT_EQ(cut.size(), 4u);  // drops the 1200 s job, keeps the 900 s one
}

TEST(EmpiricalSizeDistribution, FrequenciesMatchTrace) {
  const auto dist = empirical_size_distribution(small_trace());
  EXPECT_EQ(dist.support_size(), 4u);
  EXPECT_DOUBLE_EQ(dist.probability_of(64.0), 0.4);
  EXPECT_DOUBLE_EQ(dist.probability_of(1.0), 0.2);
}

TEST(EmpiricalSizeDistributionCut, RenormalizesBelowCut) {
  const auto dist = empirical_size_distribution_cut(small_trace(), 7);
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_DOUBLE_EQ(dist.probability_of(1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(dist.probability_of(64.0), 0.0);
}

TEST(EmpiricalServiceDistribution, CutsAt900) {
  const auto dist = empirical_service_distribution(small_trace(), 900.0);
  // Values 100 (x2), 300, 900 -> support {100, 300, 900}.
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_DOUBLE_EQ(dist.probability_of(100.0), 0.5);
  EXPECT_LE(dist.max_value(), 900.0);
}

TEST(EmpiricalDistributions, EmptyTraceThrows) {
  EXPECT_THROW(empirical_size_distribution({}), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
