#include "workload/das_workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {
namespace {

// ---- DAS-s-128: the reconstructed total-job-size distribution. ----

TEST(DasS128, MatchesTable1PowerOfTwoFractions) {
  const auto& dist = das_s_128();
  for (const auto& row : das1_power_of_two_fractions()) {
    EXPECT_NEAR(dist.probability_of(row.size), row.fraction, 1e-12)
        << "size " << row.size;
  }
}

TEST(DasS128, Table1SumsTo705Permille) {
  double total = 0.0;
  for (const auto& row : das1_power_of_two_fractions()) total += row.fraction;
  EXPECT_NEAR(total, 0.705, 1e-12);
}

TEST(DasS128, HasExactly58DistinctSizes) {
  // "The sizes of the job requests took 58 values in the interval [1,128]."
  EXPECT_EQ(das_s_128().support_size(), 58u);
}

TEST(DasS128, SupportInsideOneTo128) {
  EXPECT_GE(das_s_128().min_value(), 1.0);
  EXPECT_LE(das_s_128().max_value(), 128.0);
  EXPECT_DOUBLE_EQ(das_s_128().max_value(), 128.0);
}

TEST(DasS128, SizesAreIntegers) {
  for (double v : das_s_128().values()) {
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
}

TEST(DasS128, MeanAndCvInPlausibleDasRange) {
  // The paper reports a mean around 22 and CV around 1.6 (digits garbled in
  // the scan); the reconstruction must land in the plausible band.
  const auto& dist = das_s_128();
  EXPECT_GT(dist.mean(), 18.0);
  EXPECT_LT(dist.mean(), 28.0);
  EXPECT_GT(dist.cv(), 0.9);
  EXPECT_LT(dist.cv(), 2.0);
}

TEST(DasS128, SmallSizesPreferredAmongNonPowers) {
  const auto& dist = das_s_128();
  EXPECT_GT(dist.probability_of(3.0), dist.probability_of(33.0));
  EXPECT_GT(dist.probability_of(5.0), dist.probability_of(45.0));
}

TEST(DasS128, Size64DominatesUpperRange) {
  // 19% of the jobs have size 64 — the single heaviest size (Sect. 3.3).
  const auto& dist = das_s_128();
  for (double v : dist.values()) {
    if (v != 64.0) EXPECT_LT(dist.probability_of(v), 0.19 + 1e-12) << v;
  }
}

// ---- DAS-s-64: the log cut at 64. ----

TEST(DasS64, ExcludesOnlyAFewPercent) {
  double removed = 0.0;
  (void)das_s_64(&removed);
  // Paper: cutting at 64 excludes only ~2% of the jobs.
  EXPECT_GT(removed, 0.005);
  EXPECT_LT(removed, 0.05);
}

TEST(DasS64, MaxSizeIs64) {
  EXPECT_DOUBLE_EQ(das_s_64().max_value(), 64.0);
}

TEST(DasS64, RenormalizedFractionsGrow) {
  double removed = 0.0;
  const auto cut = das_s_64(&removed);
  const auto& full = das_s_128();
  EXPECT_NEAR(cut.probability_of(64.0), full.probability_of(64.0) / (1.0 - removed), 1e-12);
}

TEST(DasS64, LowerMeanThanDasS128) {
  EXPECT_LT(das_s_64().mean(), das_s_128().mean());
}

// ---- DAS-t-900: the service-time distribution. ----

TEST(DasT900, SamplesBoundedByCut) {
  Rng rng(11);
  const auto dist = das_t_900();
  for (int i = 0; i < 50000; ++i) {
    const double t = dist->sample(rng);
    EXPECT_GE(t, 1.0);
    EXPECT_LE(t, 900.0);
  }
}

TEST(DasT900, MeanInPlausibleRange) {
  const auto dist = das_t_900();
  EXPECT_GT(dist->mean(), 100.0);
  EXPECT_LT(dist->mean(), 250.0);
}

TEST(DasT900, HighVariability) {
  EXPECT_GT(das_t_900()->cv(), 1.0);
}

TEST(Das1RawServiceTimes, MostJobsUnder15Minutes) {
  // The paper: the bulk of recorded jobs ran for less than 15 minutes
  // (working-hours limit). The raw model must put most mass below 900 s.
  Rng rng(13);
  const auto dist = das1_raw_service_times();
  int under = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (dist->sample(rng) < 900.0) ++under;
  }
  const double fraction = static_cast<double>(under) / kN;
  EXPECT_GT(fraction, 0.75);
  EXPECT_LT(fraction, 0.97);
}

// ---- Component-count fractions (Table 2) and multi-component shares. ----

TEST(ComponentFractions, SumToOneForEveryLimit) {
  for (std::uint32_t limit : das::kComponentLimits) {
    const auto fractions = component_count_fractions(das_s_128(), limit, 4);
    ASSERT_EQ(fractions.size(), 4u);
    double total = 0.0;
    for (double f : fractions) total += f;
    EXPECT_NEAR(total, 1.0, 1e-9) << "limit " << limit;
  }
}

TEST(ComponentFractions, SingleComponentShareGrowsWithLimit) {
  // Table 2: limit 16 -> 0.513 single, 24 -> 0.738, 32 -> 0.780.
  const double f16 = component_count_fractions(das_s_128(), 16, 4)[0];
  const double f24 = component_count_fractions(das_s_128(), 24, 4)[0];
  const double f32 = component_count_fractions(das_s_128(), 32, 4)[0];
  EXPECT_LT(f16, f24);
  EXPECT_LT(f24, f32);
  // The reconstruction should land near the paper's Table 2 column 1.
  EXPECT_NEAR(f16, 0.513, 0.08);
  EXPECT_NEAR(f24, 0.738, 0.08);
  EXPECT_NEAR(f32, 0.780, 0.08);
}

TEST(ComponentFractions, Limit16HasManyMultiComponentJobs) {
  // Sect. 3.1.1: ~49% multi-component at limit 16, far fewer at 24/32.
  const double multi16 = multi_component_fraction(das_s_128(), 16, 4);
  const double multi24 = multi_component_fraction(das_s_128(), 24, 4);
  const double multi32 = multi_component_fraction(das_s_128(), 32, 4);
  EXPECT_NEAR(multi16, 0.487, 0.08);
  EXPECT_GT(multi16, multi24);
  EXPECT_GT(multi24, multi32);
}

TEST(MultiComponentFraction, ConsistentWithFractionTable) {
  for (std::uint32_t limit : das::kComponentLimits) {
    const auto fractions = component_count_fractions(das_s_128(), limit, 4);
    EXPECT_NEAR(multi_component_fraction(das_s_128(), limit, 4), 1.0 - fractions[0], 1e-12);
  }
}

// ---- Gross/net utilization ratio (Sect. 4 closed form). ----

TEST(GrossNetRatio, OneWhenNoExtension) {
  EXPECT_DOUBLE_EQ(gross_net_ratio(das_s_128(), 16, 4, 1.0), 1.0);
}

TEST(GrossNetRatio, GrowsAsLimitShrinks) {
  // More multi-component jobs -> more extended work -> larger ratio.
  const double r16 = gross_net_ratio(das_s_128(), 16, 4, 1.25);
  const double r24 = gross_net_ratio(das_s_128(), 24, 4, 1.25);
  const double r32 = gross_net_ratio(das_s_128(), 32, 4, 1.25);
  EXPECT_GT(r16, r24);
  EXPECT_GT(r24, r32);
  EXPECT_GT(r32, 1.0);
  EXPECT_LT(r16, 1.25);
}

TEST(GrossNetRatio, MatchesDirectExpectation) {
  // Independent recomputation: E[size * ext(size)] / E[size].
  const auto& dist = das_s_128();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < dist.values().size(); ++i) {
    const double v = dist.values()[i];
    const double p = dist.probabilities()[i];
    const bool multi = component_count(static_cast<std::uint32_t>(v), 24, 4) > 1;
    num += p * v * (multi ? 1.25 : 1.0);
    den += p * v;
  }
  EXPECT_NEAR(gross_net_ratio(dist, 24, 4, 1.25), num / den, 1e-12);
}

TEST(MeanExtendedSize, BoundsRespected) {
  const auto& dist = das_s_128();
  for (std::uint32_t limit : das::kComponentLimits) {
    const double extended = mean_extended_size(dist, limit, 4, 1.25);
    EXPECT_GE(extended, dist.mean());
    EXPECT_LE(extended, dist.mean() * 1.25);
  }
}

TEST(MeanExtendedSize, InvalidExtensionThrows) {
  EXPECT_THROW(mean_extended_size(das_s_128(), 16, 4, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
