// Validation of the multicluster engine against closed-form queueing
// results: with single-processor jobs and exponential service the model IS
// an M/M/c queue, so the simulated mean response must match Erlang-C.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "stats/queueing.hpp"
#include "workload/distributions.hpp"

namespace mcsim {
namespace {

SimulationConfig mmc_config(std::uint32_t servers, double lambda, double mu,
                            PolicyKind policy, std::uint64_t jobs) {
  SimulationConfig config;
  config.policy = policy;
  if (policy == PolicyKind::kSC) {
    config.cluster_sizes = {servers};
    config.workload.num_clusters = 1;
    config.workload.split_jobs = false;
  } else {
    // Spread the same servers over 4 clusters.
    config.cluster_sizes.assign(4, servers / 4);
    config.workload.num_clusters = 4;
    config.workload.split_jobs = true;
  }
  config.workload.size_distribution = DiscreteDistribution({1.0}, {1.0});
  config.workload.service_distribution = std::make_shared<ExponentialDistribution>(1.0 / mu);
  config.workload.component_limit = 1;
  config.workload.extension_factor = 1.0;
  config.workload.arrival_rate = lambda;
  config.total_jobs = jobs;
  config.seed = 99;
  return config;
}

class MmcValidation : public ::testing::TestWithParam<double> {};

TEST_P(MmcValidation, ScMatchesErlangC) {
  const double rho = GetParam();
  const std::uint32_t c = 8;
  const double mu = 1.0 / 50.0;
  const double lambda = rho * c * mu;
  const auto result = run_simulation(mmc_config(c, lambda, mu, PolicyKind::kSC, 60000));
  ASSERT_FALSE(result.unstable);
  const double expected = queueing::mmc_mean_response(c, lambda, mu);
  EXPECT_NEAR(result.mean_response(), expected, 0.08 * expected) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, MmcValidation, ::testing::Values(0.3, 0.5, 0.7, 0.85),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "rho" +
                                  std::to_string(static_cast<int>(param_info.param * 100));
                         });

TEST(MmcValidationGs, GsWithSingleCpuJobsMatchesErlangC) {
  // 4 clusters x 2 processors with 1-CPU jobs and WF placement is work-
  // conserving, so it is exactly M/M/8 as well.
  const std::uint32_t c = 8;
  const double mu = 1.0 / 50.0;
  const double lambda = 0.7 * c * mu;
  const auto result = run_simulation(mmc_config(c, lambda, mu, PolicyKind::kGS, 60000));
  ASSERT_FALSE(result.unstable);
  const double expected = queueing::mmc_mean_response(c, lambda, mu);
  EXPECT_NEAR(result.mean_response(), expected, 0.08 * expected);
}

TEST(MmcValidationLs, LsWithSingleCpuJobsIsSlowerThanMMc) {
  // Under LS, 1-CPU jobs are pinned to their origin cluster: four separate
  // M/M/2 queues instead of one M/M/8 — measurably worse at equal load.
  const std::uint32_t c = 8;
  const double mu = 1.0 / 50.0;
  const double lambda = 0.7 * c * mu;
  const auto pooled = run_simulation(mmc_config(c, lambda, mu, PolicyKind::kGS, 60000));
  const auto pinned = run_simulation(mmc_config(c, lambda, mu, PolicyKind::kLS, 60000));
  ASSERT_FALSE(pinned.unstable);
  EXPECT_GT(pinned.mean_response(), pooled.mean_response());
  // And it should agree with the M/M/2 closed form per cluster.
  const double expected = queueing::mmc_mean_response(2, lambda / 4.0, mu);
  EXPECT_NEAR(pinned.mean_response(), expected, 0.10 * expected);
}

TEST(Mg1Validation, ScSingleServerMatchesPollaczekKhinchine) {
  // One processor, 1-CPU jobs, lognormal service: M/G/1.
  const double mean_service = 40.0;
  const double cv = 1.5;
  const double lambda = 0.6 / mean_service;
  SimulationConfig config;
  config.policy = PolicyKind::kSC;
  config.cluster_sizes = {1};
  config.workload.num_clusters = 1;
  config.workload.split_jobs = false;
  config.workload.size_distribution = DiscreteDistribution({1.0}, {1.0});
  auto service = std::make_shared<LognormalDistribution>(
      LognormalDistribution::from_mean_cv(mean_service, cv));
  config.workload.service_distribution = service;
  config.workload.component_limit = 1;
  config.workload.extension_factor = 1.0;
  config.workload.arrival_rate = lambda;
  config.total_jobs = 120000;
  config.seed = 4242;
  const auto result = run_simulation(config);
  ASSERT_FALSE(result.unstable);
  const double expected =
      queueing::mg1_mean_response(lambda, service->mean(), service->variance());
  EXPECT_NEAR(result.mean_response(), expected, 0.12 * expected);
}

}  // namespace
}  // namespace mcsim
