// SwfTraceBuilder event-stream assembly and the SWF writer's field
// encoding (18 fields, -1 for unmodelled, status 5 for killed jobs).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/swf_builder.hpp"
#include "trace/swf.hpp"
#include "util/strings.hpp"

namespace mcsim {
namespace {

obs::TraceEvent event(obs::EventKind kind, std::uint64_t job, double time,
                      double value = 0.0, std::int16_t cluster = -1,
                      std::uint32_t size = 8) {
  obs::TraceEvent e;
  e.time = time;
  e.value = value;
  e.job = job;
  e.size = size;
  e.kind = kind;
  e.components = 1;
  e.cluster = cluster;
  return e;
}

TEST(SwfTraceBuilder, AssemblesOneRecordPerFinishedJob) {
  obs::SwfTraceBuilder builder;
  // Job 0: submit 10, waits 5, runs 20. Job 1 arrives but never finishes.
  builder.record(event(obs::EventKind::kArrival, 0, 10.0, 0.0, /*origin=*/2));
  builder.record(event(obs::EventKind::kArrival, 1, 12.0, 0.0, 0));
  builder.record(event(obs::EventKind::kStart, 0, 15.0, /*wait=*/5.0, 1));
  builder.record(event(obs::EventKind::kFinish, 0, 35.0, /*run=*/20.0, 1));

  EXPECT_EQ(builder.arrivals(), 2u);
  const auto& records = builder.trace().records;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].job_id, 1u);  // SWF ids are 1-based
  EXPECT_DOUBLE_EQ(records[0].submit_time, 10.0);
  EXPECT_DOUBLE_EQ(records[0].wait_time, 5.0);
  EXPECT_DOUBLE_EQ(records[0].run_time, 20.0);
  EXPECT_EQ(records[0].processors, 8u);
  EXPECT_EQ(records[0].user_id, 2u);  // origin queue exported as user
}

TEST(SwfTraceBuilder, RecordsStayInFinishOrder) {
  obs::SwfTraceBuilder builder;
  builder.record(event(obs::EventKind::kArrival, 0, 0.0));
  builder.record(event(obs::EventKind::kArrival, 1, 1.0));
  builder.record(event(obs::EventKind::kStart, 0, 2.0, 2.0));
  builder.record(event(obs::EventKind::kStart, 1, 2.0, 1.0));
  builder.record(event(obs::EventKind::kFinish, 1, 5.0, 3.0));  // job 1 first
  builder.record(event(obs::EventKind::kFinish, 0, 9.0, 7.0));
  const auto& records = builder.trace().records;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].job_id, 2u);
  EXPECT_EQ(records[1].job_id, 1u);
}

TEST(SwfTraceBuilder, IgnoresSchedulerOnlyEvents) {
  obs::SwfTraceBuilder builder;
  builder.record(event(obs::EventKind::kArrival, 0, 0.0));
  builder.record(event(obs::EventKind::kHeadOfQueue, 0, 1.0));
  builder.record(event(obs::EventKind::kPlacementAttempt, 0, 1.0));
  builder.record(event(obs::EventKind::kPlacementReject, 0, 1.0));
  EXPECT_TRUE(builder.trace().records.empty());
  EXPECT_EQ(builder.arrivals(), 1u);
}

TEST(SwfWriter, EncodesAllEighteenFields) {
  SwfTrace trace;
  TraceRecord rec;
  rec.job_id = 3;
  rec.submit_time = 1.5;
  rec.wait_time = 2.5;
  rec.run_time = 10.25;
  rec.processors = 32;
  rec.user_id = 4;
  trace.records = {rec};
  std::ostringstream out;
  write_swf(out, trace);

  std::istringstream fields(out.str());
  std::vector<std::string> tokens;
  for (std::string token; fields >> token;) tokens.push_back(token);
  ASSERT_EQ(tokens.size(), 18u);
  EXPECT_EQ(tokens[0], "3");      // job id
  EXPECT_EQ(tokens[1], "1.5");    // submit
  EXPECT_EQ(tokens[2], "2.5");    // wait
  EXPECT_EQ(tokens[3], "10.25");  // run
  EXPECT_EQ(tokens[4], "32");     // allocated processors
  EXPECT_EQ(tokens[7], "32");     // requested processors
  EXPECT_EQ(tokens[10], "1");     // status: completed
  EXPECT_EQ(tokens[11], "4");     // user id
  // Everything the simulator does not model is -1.
  for (std::size_t i : {5u, 6u, 8u, 9u, 12u, 13u, 14u, 15u, 16u, 17u}) {
    EXPECT_EQ(tokens[i], "-1") << "field " << i + 1;
  }
}

TEST(SwfWriter, KilledJobsGetStatusFive) {
  SwfTrace trace;
  TraceRecord rec;
  rec.job_id = 1;
  rec.run_time = 900.0;  // the DAS working-hours cut
  rec.processors = 1;
  rec.killed_by_limit = true;
  trace.records = {rec};
  std::ostringstream out;
  write_swf(out, trace);

  std::istringstream fields(out.str());
  std::vector<std::string> tokens;
  for (std::string token; fields >> token;) tokens.push_back(token);
  ASSERT_EQ(tokens.size(), 18u);
  EXPECT_EQ(tokens[10], "5");

  // And the reader maps status 5 back to killed_by_limit.
  std::istringstream in(out.str());
  const auto loaded = read_swf(in);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_TRUE(loaded.records[0].killed_by_limit);
  EXPECT_DOUBLE_EQ(loaded.records[0].run_time, 900.0);
}

TEST(SwfWriter, TimesRoundTripBitExactly) {
  // Values with no short decimal representation survive write -> read.
  SwfTrace trace;
  TraceRecord rec;
  rec.job_id = 1;
  rec.submit_time = 1.0 / 3.0;
  rec.wait_time = 2.0 / 7.0;
  rec.run_time = 1e9 + 1.0 / 9.0;
  rec.processors = 2;
  trace.records = {rec};
  std::stringstream buffer;
  write_swf(buffer, trace);
  const auto loaded = read_swf(buffer);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].submit_time, rec.submit_time);
  EXPECT_EQ(loaded.records[0].wait_time, rec.wait_time);
  EXPECT_EQ(loaded.records[0].run_time, rec.run_time);
  EXPECT_EQ(loaded.records[0].response_time(), rec.response_time());
}

}  // namespace
}  // namespace mcsim
