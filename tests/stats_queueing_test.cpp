#include "stats/queueing.hpp"

#include <gtest/gtest.h>

namespace mcsim::queueing {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic table values.
  EXPECT_NEAR(erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b(5, 3.0), 0.1101, 5e-4);
  EXPECT_NEAR(erlang_b(10, 7.0), 0.0787, 5e-4);
}

TEST(ErlangB, ZeroLoadNeverBlocks) { EXPECT_DOUBLE_EQ(erlang_b(4, 0.0), 0.0); }

TEST(ErlangB, MonotoneInLoad) {
  EXPECT_LT(erlang_b(4, 1.0), erlang_b(4, 2.0));
  EXPECT_LT(erlang_b(4, 2.0), erlang_b(4, 4.0));
}

TEST(ErlangB, MonotoneInServers) {
  EXPECT_GT(erlang_b(2, 2.0), erlang_b(4, 2.0));
}

TEST(ErlangC, KnownValues) {
  // M/M/1: P(wait) = rho.
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
  // M/M/2 with a = 1: C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, RequiresStability) {
  EXPECT_THROW(erlang_c(2, 2.0), std::invalid_argument);
}

TEST(MM1, ResponseFormula) {
  EXPECT_DOUBLE_EQ(mm1_mean_response(0.5, 1.0), 2.0);
  EXPECT_THROW(mm1_mean_response(1.0, 1.0), std::invalid_argument);
}

TEST(MMc, ReducesToMM1) {
  EXPECT_NEAR(mmc_mean_response(1, 0.5, 1.0), mm1_mean_response(0.5, 1.0), 1e-12);
  EXPECT_NEAR(mmc_mean_wait(1, 0.5, 1.0), 1.0, 1e-12);
}

TEST(MMc, TwoServerKnownValue) {
  // lambda = 1, mu = 1, c = 2: W = C(2,1)/(2*1-1) = 1/3.
  EXPECT_NEAR(mmc_mean_wait(2, 1.0, 1.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mmc_mean_response(2, 1.0, 1.0), 4.0 / 3.0, 1e-12);
}

TEST(MMc, LittlesLaw) {
  const double lambda = 3.0, mu = 1.0;
  EXPECT_NEAR(mmc_mean_in_system(5, lambda, mu),
              lambda * mmc_mean_response(5, lambda, mu), 1e-12);
}

TEST(MG1, ReducesToMM1ForExponentialService) {
  // Exponential service: variance = mean^2; PK gives the M/M/1 wait.
  const double lambda = 0.5, mean = 1.0;
  EXPECT_NEAR(mg1_mean_wait(lambda, mean, mean * mean), 1.0, 1e-12);
  EXPECT_NEAR(mg1_mean_response(lambda, mean, mean * mean), 2.0, 1e-12);
}

TEST(MG1, DeterministicServiceHalvesTheWait) {
  const double lambda = 0.5, mean = 1.0;
  EXPECT_NEAR(mg1_mean_wait(lambda, mean, 0.0), 0.5, 1e-12);
}

TEST(MG1, VarianceIncreasesWait) {
  EXPECT_LT(mg1_mean_wait(0.5, 1.0, 1.0), mg1_mean_wait(0.5, 1.0, 4.0));
}

TEST(MG1, RequiresStability) {
  EXPECT_THROW(mg1_mean_wait(2.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::queueing
