#include "workload/size_models.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/distributions.hpp"

namespace mcsim {
namespace {

TEST(DqDistribution, FavorsSmallSizes) {
  const auto dist = dq_size_distribution(0.9, 1, 64);
  EXPECT_GT(dist.probability_of(1.0), dist.probability_of(3.0));
  EXPECT_GT(dist.probability_of(3.0), dist.probability_of(33.0));
}

TEST(DqDistribution, BoostsPowersOfTwo) {
  const auto dist = dq_size_distribution(0.9, 1, 64, 3.0);
  // P(8) should be ~3x a neighbouring non-power scaled by q: compare with 9.
  EXPECT_GT(dist.probability_of(8.0), 2.0 * dist.probability_of(9.0));
  // Without the boost, 8 and 9 differ only by the factor q.
  const auto flat = dq_size_distribution(0.9, 1, 64, 1.0);
  EXPECT_NEAR(flat.probability_of(9.0) / flat.probability_of(8.0), 0.9, 1e-9);
}

TEST(DqDistribution, FullSupport) {
  const auto dist = dq_size_distribution(0.95, 1, 32);
  EXPECT_EQ(dist.support_size(), 32u);
  EXPECT_DOUBLE_EQ(dist.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max_value(), 32.0);
}

TEST(DqDistribution, InvalidParametersThrow) {
  EXPECT_THROW(dq_size_distribution(1.0, 1, 32), std::invalid_argument);
  EXPECT_THROW(dq_size_distribution(0.0, 1, 32), std::invalid_argument);
  EXPECT_THROW(dq_size_distribution(0.9, 8, 4), std::invalid_argument);
  EXPECT_THROW(dq_size_distribution(0.9, 0, 4), std::invalid_argument);
}

TEST(UniformSizes, EqualProbabilities) {
  const auto dist = uniform_size_distribution(4, 7);
  EXPECT_EQ(dist.support_size(), 4u);
  for (double v : {4.0, 5.0, 6.0, 7.0}) {
    EXPECT_NEAR(dist.probability_of(v), 0.25, 1e-12);
  }
  EXPECT_DOUBLE_EQ(dist.mean(), 5.5);
}

TEST(ZipfSizes, PowerLawShape) {
  const auto dist = zipf_size_distribution(2.0, 1, 100);
  EXPECT_NEAR(dist.probability_of(2.0) / dist.probability_of(1.0), 0.25, 1e-9);
  EXPECT_NEAR(dist.probability_of(10.0) / dist.probability_of(1.0), 0.01, 1e-9);
}

TEST(ErlangDistribution, LowVariability) {
  ErlangDistribution d(4, 25.0);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
  EXPECT_DOUBLE_EQ(d.cv(), 0.5);  // 1/sqrt(4)
  Rng rng(1);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, 100.0, 1.0);
}

TEST(ErlangDistribution, OnePhaseIsExponential) {
  ErlangDistribution erlang(1, 10.0);
  EXPECT_NEAR(erlang.cv(), 1.0, 1e-12);
}

TEST(GammaDistribution, MomentsMatch) {
  GammaDistribution d(2.5, 4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 10.0);
  EXPECT_DOUBLE_EQ(d.variance(), 40.0);
  Rng rng(2);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sumsq / kN - mean * mean, 40.0, 1.5);
}

TEST(GammaDistribution, ShapeBelowOne) {
  GammaDistribution d(0.5, 2.0);
  Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, 1.0, 0.03);
}

TEST(ShiftedDistribution, AddsConstant) {
  auto inner = std::make_shared<ExponentialDistribution>(5.0);
  ShiftedDistribution d(inner, 10.0);
  EXPECT_DOUBLE_EQ(d.mean(), 15.0);
  EXPECT_DOUBLE_EQ(d.variance(), 25.0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(d.sample(rng), 10.0);
}

TEST(NewDistributions, InvalidParametersThrow) {
  EXPECT_THROW(ErlangDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ErlangDistribution(2, 0.0), std::invalid_argument);
  EXPECT_THROW(GammaDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShiftedDistribution(nullptr, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
