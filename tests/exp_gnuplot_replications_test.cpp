#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exp/gnuplot.hpp"
#include "exp/replications.hpp"
#include "exp/sweep.hpp"

namespace mcsim {
namespace {

SweepSeries tiny_series() {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  SweepConfig config;
  config.target_utilizations = {0.2, 0.3};
  config.jobs_per_point = 2000;
  return run_sweep(scenario, config);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Gnuplot, WritesDataAndScript) {
  const auto series = tiny_series();
  const std::string dir = ::testing::TempDir();
  const auto files = write_gnuplot_panel(dir, "mcsim_test_panel", "test title", {series});

  const std::string data = slurp(files.data_path);
  EXPECT_NE(data.find("# GS limit=16"), std::string::npos);
  EXPECT_NE(data.find("0.200 "), std::string::npos);

  const std::string script = slurp(files.script_path);
  EXPECT_NE(script.find("set title 'test title'"), std::string::npos);
  EXPECT_NE(script.find("mcsim_test_panel.dat"), std::string::npos);
  EXPECT_NE(script.find("yerrorlines"), std::string::npos);
}

TEST(Gnuplot, OneIndexBlockPerSeries) {
  const auto series = tiny_series();
  const std::string dir = ::testing::TempDir();
  const auto files =
      write_gnuplot_panel(dir, "mcsim_test_panel2", "two series", {series, series});
  const std::string script = slurp(files.script_path);
  EXPECT_NE(script.find("index 0"), std::string::npos);
  EXPECT_NE(script.find("index 1"), std::string::npos);
}

TEST(Gnuplot, EmptyPanelThrows) {
  EXPECT_THROW(write_gnuplot_panel("/tmp", "x", "t", {}), std::invalid_argument);
}

TEST(Gnuplot, UnwritableDirectoryThrows) {
  EXPECT_THROW(write_gnuplot_panel("/nonexistent_dir_xyz", "x", "t", {tiny_series()}),
               std::invalid_argument);
}

TEST(Replications, CombinesIndependentRuns) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto result = run_replications(scenario, 0.35, 4000, 5, /*base_seed=*/100);
  EXPECT_EQ(result.stable_replications(), 5u);
  EXPECT_EQ(result.unstable_replications, 0u);
  EXPECT_GT(result.response_ci.mean, 0.0);
  EXPECT_GT(result.response_ci.halfwidth, 0.0);
  EXPECT_NEAR(result.mean_busy_fraction, 0.35, 0.05);
  // Different seeds must produce different means.
  EXPECT_NE(result.replication_means[0], result.replication_means[1]);
}

TEST(Replications, ReplicationCiCoversSingleLongRun) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto reps = run_replications(scenario, 0.4, 6000, 8, 200);
  const auto long_run = run_simulation(make_paper_config(scenario, 0.4, 48000, 999));
  EXPECT_NEAR(long_run.mean_response(), reps.response_ci.mean,
              reps.response_ci.halfwidth * 3 + 0.1 * long_run.mean_response());
}

TEST(Replications, UnstableRunsExcluded) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto result = run_replications(scenario, 1.5, 4000, 3, 1);
  EXPECT_EQ(result.unstable_replications, 3u);
  EXPECT_EQ(result.stable_replications(), 0u);
}

TEST(Replications, ZeroReplicationsThrow) {
  PaperScenario scenario;
  EXPECT_THROW(run_replications(scenario, 0.3, 1000, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
