// The curated pipeline scenario matrix (data/scenarios/matrix/, written by
// tools/make_scenario_matrix): every checked-in matrix scenario loads,
// validates, and is pinned by a well-formed sealed golden; no golden is
// stale; and the matrix actually spans the pipeline axes it exists to
// cover (disciplines on every structure, all backfill variants, the
// placement rules, and the restricted co-allocation rules).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "exp/golden.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"
#include "policy/pipeline.hpp"

#ifndef MCSIM_MATRIX_SCENARIO_DIR
#define MCSIM_MATRIX_SCENARIO_DIR "data/scenarios/matrix"
#endif
#ifndef MCSIM_MATRIX_GOLDEN_DIR
#define MCSIM_MATRIX_GOLDEN_DIR "data/golden/matrix"
#endif

namespace mcsim {
namespace {

namespace fs = std::filesystem;

std::map<std::string, exp::ScenarioSpec> load_matrix() {
  std::map<std::string, exp::ScenarioSpec> specs;
  for (const auto& entry : fs::directory_iterator(MCSIM_MATRIX_SCENARIO_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") continue;
    specs.emplace(entry.path().filename().string(),
                  exp::load_scenario(entry.path().string()));
  }
  return specs;
}

TEST(MatrixCorpus, EveryScenarioLoadsAndValidates) {
  const auto specs = load_matrix();
  EXPECT_GE(specs.size(), 24u);
  for (const auto& [file, spec] : specs) {
    SCOPED_TRACE(file);
    EXPECT_NO_THROW(exp::validate(spec));
    // The matrix is a cheap, always-on corpus: point runs only.
    EXPECT_EQ(spec.mode, exp::RunMode::kPoint);
    EXPECT_FALSE(spec.name.empty());
  }
}

TEST(MatrixCorpus, EveryScenarioHasASealedGolden) {
  for (const auto& [file, spec] : load_matrix()) {
    SCOPED_TRACE(file);
    const std::string golden = exp::golden_path_for(MCSIM_MATRIX_GOLDEN_DIR, file);
    ASSERT_TRUE(fs::exists(golden)) << "missing golden: " << golden;
    const obs::JsonValue document = obs::parse_json_file(golden);
    ASSERT_TRUE(document.is_object());
    EXPECT_EQ(document.find("schema")->as_string(), "mcsim-golden");
    EXPECT_EQ(document.find("scenario_file")->as_string(), file);
    // The seal: the recorded digest must match the embedded observation.
    const obs::JsonValue* observation = document.find("observed");
    ASSERT_NE(observation, nullptr);
    EXPECT_EQ(document.find("digest")->as_string(),
              exp::observation_digest(*observation));
  }
}

TEST(MatrixCorpus, NoStaleGoldens) {
  const auto specs = load_matrix();
  for (const auto& entry : fs::directory_iterator(MCSIM_MATRIX_GOLDEN_DIR)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".golden.json";
    if (!name.ends_with(kSuffix)) continue;
    const std::string stem = name.substr(0, name.size() - kSuffix.size());
    EXPECT_TRUE(specs.contains(stem + ".json")) << "stale golden: " << name;
  }
}

TEST(MatrixCorpus, SpansThePipelineAxes) {
  std::set<QueueStructure> structures;
  std::set<QueueDiscipline> disciplines;
  std::set<BackfillMode> backfills;
  std::set<PlacementRule> placements;
  std::set<CoAllocationRule::Kind> rules;
  for (const auto& [file, spec] : load_matrix()) {
    const PipelineSpec pipeline = spec.pipeline();
    structures.insert(pipeline.structure);
    disciplines.insert(pipeline.discipline);
    backfills.insert(pipeline.backfill);
    placements.insert(pipeline.placement);
    rules.insert(pipeline.coallocation.kind);
  }
  EXPECT_EQ(structures.size(), 3u) << "every queue structure";
  EXPECT_GE(disciplines.size(), 3u) << "fcfs plus reordering disciplines";
  EXPECT_EQ(backfills.size(), 4u) << "none, aggressive, easy, conservative";
  EXPECT_EQ(placements.size(), 4u) << "WF, FF, BF, LA";
  EXPECT_EQ(rules.size(), 3u) << "co, no-co, limit-L";
}

}  // namespace
}  // namespace mcsim
