// Heterogeneous cluster speeds (extension toward the grid setting the
// paper's introduction motivates; the paper itself is homogeneous).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

TEST(ClusterSpeed, StoredAndValidated) {
  Cluster fast(0, 32, 2.0);
  EXPECT_DOUBLE_EQ(fast.speed(), 2.0);
  EXPECT_THROW(Cluster(0, 32, 0.0), std::invalid_argument);
  Cluster default_speed(1, 32);
  EXPECT_DOUBLE_EQ(default_speed.speed(), 1.0);
}

TEST(Multicluster, SlowestSpeedOverAllocation) {
  Multicluster system({32, 32, 32}, {1.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(system.slowest_speed({{0, 8}}), 1.0);
  EXPECT_DOUBLE_EQ(system.slowest_speed({{0, 8}, {2, 8}}), 1.0);
  EXPECT_DOUBLE_EQ(system.slowest_speed({{1, 8}, {2, 8}}), 0.5);
  EXPECT_THROW(system.slowest_speed({}), std::invalid_argument);
}

TEST(Multicluster, MismatchedSpeedsThrow) {
  EXPECT_THROW(Multicluster({32, 32}, {1.0}), std::invalid_argument);
}

SimulationConfig speed_config(std::vector<double> speeds, double rho = 0.3,
                              std::uint64_t jobs = 8000) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  auto config = make_paper_config(scenario, rho, jobs, /*seed=*/21);
  config.cluster_speeds = std::move(speeds);
  return config;
}

TEST(HeterogeneousEngine, HomogeneousSpeedsMatchDefault) {
  const auto base = run_simulation(speed_config({}));
  const auto explicit_ones = run_simulation(speed_config({1.0, 1.0, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(base.mean_response(), explicit_ones.mean_response());
}

TEST(HeterogeneousEngine, SlowClusterRaisesResponseTimes) {
  const auto uniform = run_simulation(speed_config({1.0, 1.0, 1.0, 1.0}));
  const auto one_slow = run_simulation(speed_config({0.5, 1.0, 1.0, 1.0}));
  ASSERT_FALSE(one_slow.unstable);
  EXPECT_GT(one_slow.mean_response(), uniform.mean_response());
}

TEST(HeterogeneousEngine, FasterClustersReduceResponseTimes) {
  const auto uniform = run_simulation(speed_config({1.0, 1.0, 1.0, 1.0}));
  const auto all_fast = run_simulation(speed_config({2.0, 2.0, 2.0, 2.0}));
  ASSERT_FALSE(all_fast.unstable);
  EXPECT_LT(all_fast.mean_response(), uniform.mean_response());
  // Doubling every speed halves the carried load; the busy fraction drops.
  EXPECT_LT(all_fast.busy_fraction, uniform.busy_fraction);
}

TEST(HeterogeneousEngine, SlowClusterIsBusierPerUnitWork) {
  // Jobs pinned/placed on the slow cluster hold it longer: its busy
  // fraction exceeds the fast clusters'.
  const auto result = run_simulation(speed_config({0.5, 1.0, 1.0, 1.0}, 0.35, 15000));
  ASSERT_EQ(result.per_cluster_busy_fraction.size(), 4u);
  EXPECT_GT(result.per_cluster_busy_fraction[0], result.per_cluster_busy_fraction[1]);
  EXPECT_GT(result.per_cluster_busy_fraction[0], result.per_cluster_busy_fraction[3]);
}

}  // namespace
}  // namespace mcsim
