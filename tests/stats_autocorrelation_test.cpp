#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace mcsim {
namespace {

std::vector<double> iid_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> series(n);
  for (auto& x : series) x = rng.uniform();
  return series;
}

std::vector<double> ar1_series(std::size_t n, double phi, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> series(n);
  double level = 0.0;
  for (auto& x : series) {
    level = phi * level + rng.normal();
    x = level;
  }
  return series;
}

TEST(Autocorrelation, LagZeroIsOne) {
  EXPECT_DOUBLE_EQ(autocorrelation(iid_series(100, 1), 0), 1.0);
}

TEST(Autocorrelation, IidIsNearZeroAtPositiveLags) {
  const auto series = iid_series(20000, 2);
  for (std::size_t lag : {1u, 2u, 5u, 10u}) {
    EXPECT_LT(std::fabs(autocorrelation(series, lag)), 0.03) << "lag " << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesPhiPowers) {
  const double phi = 0.8;
  const auto series = ar1_series(50000, phi, 3);
  EXPECT_NEAR(autocorrelation(series, 1), phi, 0.03);
  EXPECT_NEAR(autocorrelation(series, 2), phi * phi, 0.04);
  EXPECT_NEAR(autocorrelation(series, 3), phi * phi * phi, 0.05);
}

TEST(Autocorrelation, DegenerateInputsSafe) {
  EXPECT_DOUBLE_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({2.0, 2.0, 2.0}, 1), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(autocorrelation(iid_series(10, 4), 20), 0.0);  // lag >= n
}

TEST(AutocorrelationFunction, StartsAtOneAndHasRightLength) {
  const auto acf = autocorrelation_function(iid_series(1000, 5), 10);
  ASSERT_EQ(acf.size(), 11u);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(VonNeumann, NearTwoForIid) {
  EXPECT_NEAR(von_neumann_ratio(iid_series(20000, 6)), 2.0, 0.1);
}

TEST(VonNeumann, SmallForPositivelyCorrelated) {
  EXPECT_LT(von_neumann_ratio(ar1_series(20000, 0.9, 7)), 1.0);
}

TEST(VonNeumann, DegenerateSafe) {
  EXPECT_DOUBLE_EQ(von_neumann_ratio({}), 2.0);
  EXPECT_DOUBLE_EQ(von_neumann_ratio({5.0, 5.0}), 2.0);
}

TEST(EffectiveSampleSize, NearNForIid) {
  const auto series = iid_series(5000, 8);
  EXPECT_GT(effective_sample_size(series), 3500.0);
}

TEST(EffectiveSampleSize, ShrinksForCorrelatedData) {
  const auto series = ar1_series(5000, 0.9, 9);
  // Theoretical ESS factor for AR(1): (1-phi)/(1+phi) ~ 0.053.
  EXPECT_LT(effective_sample_size(series), 1000.0);
  EXPECT_GT(effective_sample_size(series), 50.0);
}

}  // namespace
}  // namespace mcsim
