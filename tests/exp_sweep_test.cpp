#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace mcsim {
namespace {

TEST(SweepGrid, InclusiveEndpoints) {
  const auto grid = SweepConfig::grid(0.2, 0.6, 0.1);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.2);
  EXPECT_NEAR(grid.back(), 0.6, 1e-9);
}

TEST(SweepGrid, SinglePoint) {
  const auto grid = SweepConfig::grid(0.5, 0.5, 0.1);
  ASSERT_EQ(grid.size(), 1u);
}

TEST(Scenario, LabelsAreDescriptive) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  scenario.component_limit = 16;
  scenario.balanced_queues = false;
  EXPECT_EQ(scenario.label(), "LS limit=16 unbalanced DAS-s-128");

  PaperScenario sc;
  sc.policy = PolicyKind::kSC;
  sc.limit_total_size_64 = true;
  EXPECT_EQ(sc.label(), "SC DAS-s-64");
}

TEST(Scenario, PaperConfigUsesDasLayout) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  const auto config = make_paper_config(scenario, 0.4, 1000, 1);
  EXPECT_EQ(config.cluster_sizes, (std::vector<std::uint32_t>{32, 32, 32, 32}));
  EXPECT_EQ(config.total_processors(), 128u);
  EXPECT_TRUE(config.workload.split_jobs);

  PaperScenario sc;
  sc.policy = PolicyKind::kSC;
  const auto sc_config = make_paper_config(sc, 0.4, 1000, 1);
  EXPECT_EQ(sc_config.cluster_sizes, (std::vector<std::uint32_t>{128}));
  EXPECT_FALSE(sc_config.workload.split_jobs);
}

TEST(Scenario, UnbalancedSetsQueueWeights) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  scenario.balanced_queues = false;
  const auto config = make_paper_config(scenario, 0.4, 1000, 1);
  ASSERT_EQ(config.workload.queue_weights.size(), 4u);
  EXPECT_DOUBLE_EQ(config.workload.queue_weights[0], 0.4);
  EXPECT_DOUBLE_EQ(config.workload.queue_weights[1], 0.2);
}

TEST(Scenario, DasS64UsesCutDistribution) {
  PaperScenario scenario;
  scenario.limit_total_size_64 = true;
  const auto config = make_paper_config(scenario, 0.4, 1000, 1);
  EXPECT_DOUBLE_EQ(config.workload.size_distribution.max_value(), 64.0);
}

TEST(Sweep, StopsAfterFirstUnstablePoint) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  SweepConfig config;
  config.target_utilizations = {0.2, 1.5, 0.3};  // 1.5 is far beyond saturation
  config.jobs_per_point = 3000;
  config.seed = 3;
  const auto series = run_sweep(scenario, config);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_FALSE(series.points[0].result.unstable);
  EXPECT_TRUE(series.points[1].result.unstable);
  EXPECT_DOUBLE_EQ(series.max_stable_utilization(), 0.2);
}

TEST(Sweep, ResponseMonotoneInLoadOnAverage) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  SweepConfig config;
  config.target_utilizations = {0.15, 0.45};
  config.jobs_per_point = 6000;
  const auto series = run_sweep(scenario, config);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_LT(series.points[0].result.mean_response(),
            series.points[1].result.mean_response());
}

TEST(Report, PanelPrintsLegendAndRows) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  SweepConfig config;
  config.target_utilizations = {0.2};
  config.jobs_per_point = 2000;
  std::vector<SweepSeries> series = {run_sweep(scenario, config)};

  std::ostringstream out;
  print_panel(out, "test panel", series);
  EXPECT_NE(out.str().find("test panel"), std::string::npos);
  EXPECT_NE(out.str().find("GS limit=16"), std::string::npos);
  EXPECT_NE(out.str().find("0.200"), std::string::npos);

  std::ostringstream csv;
  write_panel_csv(csv, "panel", series, /*with_header=*/true);
  EXPECT_NE(csv.str().find("panel,"), std::string::npos);
  EXPECT_NE(csv.str().find("target_gross_utilization"), std::string::npos);

  std::ostringstream plot;
  print_ascii_plot(plot, series);
  EXPECT_NE(plot.str().find("GS limit=16"), std::string::npos);
}

TEST(Report, PerformanceOrderPrefersHigherMaxUtilization) {
  SweepSeries good, bad;
  good.scenario.policy = PolicyKind::kLS;
  bad.scenario.policy = PolicyKind::kLP;
  SweepPoint stable;
  stable.target_gross_utilization = 0.5;
  stable.result.unstable = false;
  good.points.push_back(stable);
  SweepPoint low;
  low.target_gross_utilization = 0.3;
  low.result.unstable = false;
  bad.points.push_back(low);
  const auto order = performance_order({bad, good});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // "good" first
}

}  // namespace
}  // namespace mcsim
