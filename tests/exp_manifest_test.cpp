// The JSON run manifest: schema stability, provenance, and bit-exact
// round-trip of the headline result through the text encoding.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "exp/manifest.hpp"
#include "exp/scenario.hpp"

namespace mcsim {
namespace {

// Extract the number following `"key": ` (first occurrence).
double json_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

struct ManifestFixture {
  SimulationConfig config;
  SimulationResult result;
  obs::MetricsRegistry metrics;
  std::string json;
};

ManifestFixture run_and_write(const ManifestInfo& info = {}) {
  ManifestFixture fixture;
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  fixture.config = make_paper_config(scenario, 0.4, 3000, /*seed=*/11);
  MulticlusterSimulation simulation(fixture.config);
  simulation.set_metrics(&fixture.metrics);
  fixture.result = simulation.run();
  std::ostringstream out;
  write_run_manifest(out, fixture.config, fixture.result, &fixture.metrics, info);
  fixture.json = out.str();
  return fixture;
}

TEST(Manifest, SchemaKeysAreStable) {
  const auto fixture = run_and_write();
  for (const char* key :
       {"\"schema\": \"mcsim-run-manifest\"", "\"schema_version\": 1",
        "\"provenance\"", "\"git_describe\"", "\"clocks\"", "\"sim_end_time\"",
        "\"wall_seconds\"", "\"events_executed\"", "\"events_per_second\"",
        "\"config\"", "\"policy\"", "\"cluster_sizes\"", "\"workload\"",
        "\"arrival_rate\"", "\"result\"", "\"mean_response\"", "\"response\"",
        "\"ci95\"", "\"per_cluster_busy_fraction\"", "\"metrics\"",
        "\"counters\"", "\"gauges\"", "\"series\""}) {
    EXPECT_NE(fixture.json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(Manifest, MeanResponseRoundTripsBitExactly) {
  const auto fixture = run_and_write();
  EXPECT_EQ(json_number(fixture.json, "mean_response"),
            fixture.result.mean_response());
  EXPECT_EQ(json_number(fixture.json, "sim_end_time"), fixture.result.end_time);
  EXPECT_EQ(json_number(fixture.json, "arrival_rate"),
            fixture.config.workload.arrival_rate);
}

TEST(Manifest, CountsMatchResult) {
  const auto fixture = run_and_write();
  EXPECT_EQ(static_cast<std::uint64_t>(json_number(fixture.json, "completed_jobs")),
            fixture.result.completed_jobs);
  EXPECT_EQ(static_cast<std::uint64_t>(json_number(fixture.json, "measured_jobs")),
            fixture.result.measured_jobs);
}

TEST(Manifest, TraceSectionAppearsOnlyWhenRequested) {
  const auto bare = run_and_write();
  EXPECT_EQ(bare.json.find("\"trace\""), std::string::npos);

  ManifestInfo info;
  info.trace_path = "/tmp/run.swf";
  info.trace_records = 42;
  info.events_recorded = 100;
  info.events_dropped = 3;
  const auto traced = run_and_write(info);
  EXPECT_NE(traced.json.find("\"trace\""), std::string::npos);
  EXPECT_NE(traced.json.find("\"path\": \"/tmp/run.swf\""), std::string::npos);
  EXPECT_EQ(static_cast<std::uint64_t>(json_number(traced.json, "records")), 42u);
  EXPECT_EQ(static_cast<std::uint64_t>(json_number(traced.json, "events_dropped")), 3u);
}

TEST(Manifest, MetricsObjectOmittedWithoutRegistry) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto config = make_paper_config(scenario, 0.4, 1000, 11);
  const auto result = run_simulation(config);
  std::ostringstream out;
  write_run_manifest(out, config, result, nullptr, {});
  EXPECT_EQ(out.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.str().find("\"result\""), std::string::npos);
}

TEST(Manifest, GitDescribeIsNonEmpty) {
  EXPECT_NE(std::string(git_describe()), "");
}

TEST(Manifest, CommandLineIsEscaped) {
  ManifestInfo info;
  info.command_line = "mcsim point \"quoted\"";
  const auto fixture = run_and_write(info);
  EXPECT_NE(fixture.json.find("mcsim point \\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace mcsim
