// Unit tests for the composition vocabulary (policy/pipeline.hpp): stage
// name round trips, the alias expansion table, display names, and the
// validation rules that reject incoherent compositions deterministically.
#include "policy/pipeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcsim {
namespace {

TEST(QueueStructureNames, RoundTrip) {
  EXPECT_EQ(parse_queue_structure("single"), QueueStructure::kSingleGlobal);
  EXPECT_EQ(parse_queue_structure("per-cluster"), QueueStructure::kPerCluster);
  EXPECT_EQ(parse_queue_structure("local-global"),
            QueueStructure::kLocalPlusGlobal);
  // Case-insensitive.
  EXPECT_EQ(parse_queue_structure("Per-Cluster"), QueueStructure::kPerCluster);
  for (QueueStructure structure :
       {QueueStructure::kSingleGlobal, QueueStructure::kPerCluster,
        QueueStructure::kLocalPlusGlobal}) {
    EXPECT_EQ(parse_queue_structure(queue_structure_name(structure)), structure);
  }
  EXPECT_THROW(parse_queue_structure("round-robin"), std::invalid_argument);
}

TEST(QueueStructureNames, ShortTags) {
  EXPECT_STREQ(queue_structure_short_name(QueueStructure::kSingleGlobal), "1q");
  EXPECT_STREQ(queue_structure_short_name(QueueStructure::kPerCluster), "pc");
  EXPECT_STREQ(queue_structure_short_name(QueueStructure::kLocalPlusGlobal),
               "lg");
}

TEST(CoAllocationNames, RoundTrip) {
  EXPECT_EQ(parse_coallocation_rule("co").kind,
            CoAllocationRule::Kind::kUnrestricted);
  EXPECT_EQ(parse_coallocation_rule("unrestricted").kind,
            CoAllocationRule::Kind::kUnrestricted);
  EXPECT_EQ(parse_coallocation_rule("no-co").kind,
            CoAllocationRule::Kind::kLocalOnly);
  EXPECT_EQ(parse_coallocation_rule("local-only").kind,
            CoAllocationRule::Kind::kLocalOnly);

  const CoAllocationRule limited = parse_coallocation_rule("limit-3");
  EXPECT_EQ(limited.kind, CoAllocationRule::Kind::kComponentLimit);
  EXPECT_EQ(limited.component_limit, 3u);

  for (const CoAllocationRule& rule :
       {CoAllocationRule{CoAllocationRule::Kind::kUnrestricted, 0},
        CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0},
        CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 2}}) {
    EXPECT_EQ(parse_coallocation_rule(coallocation_rule_name(rule)), rule);
  }

  EXPECT_THROW(parse_coallocation_rule("sometimes"), std::invalid_argument);
  EXPECT_THROW(parse_coallocation_rule("limit-"), std::invalid_argument);
  EXPECT_THROW(parse_coallocation_rule("limit-x"), std::invalid_argument);
}

TEST(ExpandPolicy, CanonicalCompositions) {
  const PipelineSpec gs = expand_policy(PolicyKind::kGS);
  EXPECT_EQ(gs.structure, QueueStructure::kSingleGlobal);
  EXPECT_EQ(gs.coallocation.kind, CoAllocationRule::Kind::kUnrestricted);

  const PipelineSpec sc = expand_policy(PolicyKind::kSC);
  EXPECT_EQ(sc.structure, QueueStructure::kSingleGlobal);
  EXPECT_EQ(sc.coallocation.kind, CoAllocationRule::Kind::kUnrestricted);

  const PipelineSpec ls = expand_policy(PolicyKind::kLS);
  EXPECT_EQ(ls.structure, QueueStructure::kPerCluster);
  EXPECT_EQ(ls.coallocation.kind, CoAllocationRule::Kind::kLocalOnly);

  const PipelineSpec lp = expand_policy(PolicyKind::kLP);
  EXPECT_EQ(lp.structure, QueueStructure::kLocalPlusGlobal);
  EXPECT_EQ(lp.coallocation.kind, CoAllocationRule::Kind::kLocalOnly);
}

TEST(ExpandPolicy, TuningKnobsCarryOver) {
  const PipelineSpec spec =
      expand_policy(PolicyKind::kGS, PlacementRule::kFirstFit,
                    BackfillMode::kEasy, QueueDiscipline::kShortestJobFirst);
  EXPECT_EQ(spec.placement, PlacementRule::kFirstFit);
  EXPECT_EQ(spec.backfill, BackfillMode::kEasy);
  EXPECT_EQ(spec.discipline, QueueDiscipline::kShortestJobFirst);
}

TEST(ValidatePipeline, AcceptsCanonicalCompositions) {
  for (PolicyKind kind :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    EXPECT_NO_THROW(validate_pipeline(expand_policy(kind)));
  }
}

TEST(ValidatePipeline, BackfillNeedsTheSingleGlobalQueue) {
  // EASY backfilling reasons about the whole system's future idle capacity
  // through one queue; per-cluster structures must reject deterministically.
  for (QueueStructure structure :
       {QueueStructure::kPerCluster, QueueStructure::kLocalPlusGlobal}) {
    for (BackfillMode backfill :
         {BackfillMode::kAggressive, BackfillMode::kEasy,
          BackfillMode::kConservative}) {
      PipelineSpec spec;
      spec.structure = structure;
      spec.backfill = backfill;
      if (structure != QueueStructure::kSingleGlobal) {
        spec.coallocation.kind = CoAllocationRule::Kind::kLocalOnly;
      }
      EXPECT_THROW(validate_pipeline(spec), std::invalid_argument);
    }
  }
}

TEST(ValidatePipeline, ComponentLimitMustAllowOneComponent) {
  PipelineSpec spec;
  spec.coallocation = CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 0};
  EXPECT_THROW(validate_pipeline(spec), std::invalid_argument);
  spec.coallocation.component_limit = 1;
  EXPECT_NO_THROW(validate_pipeline(spec));
}

TEST(DisplayNames, CanonicalAliasesReproduceLegacyNames) {
  EXPECT_EQ(scheduler_display_name(PolicyKind::kGS, expand_policy(PolicyKind::kGS)),
            "GS");
  EXPECT_EQ(scheduler_display_name(PolicyKind::kLS, expand_policy(PolicyKind::kLS)),
            "LS");
  EXPECT_EQ(scheduler_display_name(PolicyKind::kLP, expand_policy(PolicyKind::kLP)),
            "LP");
  EXPECT_EQ(scheduler_display_name(PolicyKind::kSC, expand_policy(PolicyKind::kSC)),
            "SC");
  EXPECT_EQ(scheduler_display_name(
                PolicyKind::kGS,
                expand_policy(PolicyKind::kGS, PlacementRule::kWorstFit,
                              BackfillMode::kEasy,
                              QueueDiscipline::kShortestJobFirst)),
            "GS+easy-bf+sjf");
  EXPECT_EQ(scheduler_display_name(
                PolicyKind::kSC,
                expand_policy(PolicyKind::kSC, PlacementRule::kWorstFit,
                              BackfillMode::kEasy)),
            "SC+easy-bf");
}

TEST(DisplayNames, OverriddenStructuresSpellTheComposition) {
  PipelineSpec spec = expand_policy(PolicyKind::kGS);
  spec.coallocation.kind = CoAllocationRule::Kind::kLocalOnly;
  EXPECT_EQ(scheduler_display_name(PolicyKind::kGS, spec), "1q/no-co");

  PipelineSpec limited = expand_policy(PolicyKind::kLS);
  limited.coallocation =
      CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 2};
  EXPECT_EQ(scheduler_display_name(PolicyKind::kLS, limited), "pc/limit-2");
}

}  // namespace
}  // namespace mcsim
