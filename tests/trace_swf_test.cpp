#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace mcsim {
namespace {

TraceRecord sample_record() {
  TraceRecord rec;
  rec.job_id = 7;
  rec.submit_time = 100.0;
  rec.wait_time = 30.0;   // starts at 130
  rec.run_time = 300.0;   // ends at 430
  rec.processors = 16;
  rec.user_id = 3;
  rec.killed_by_limit = false;
  return rec;
}

TEST(Swf, RoundTripPreservesFields) {
  SwfTrace trace;
  trace.header_comments = {"Synthetic log", "MaxNodes: 128"};
  trace.records = {sample_record()};
  auto killed = sample_record();
  killed.job_id = 8;
  killed.killed_by_limit = true;
  trace.records.push_back(killed);

  std::stringstream buffer;
  write_swf(buffer, trace);
  const SwfTrace loaded = read_swf(buffer);

  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.header_comments.size(), 2u);
  const auto& rec = loaded.records[0];
  EXPECT_EQ(rec.job_id, 7u);
  // Exact: the writer prints %.17g, so doubles survive the round trip.
  EXPECT_DOUBLE_EQ(rec.submit_time, 100.0);
  EXPECT_DOUBLE_EQ(rec.start_time(), 130.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 430.0);
  EXPECT_EQ(rec.processors, 16u);
  EXPECT_EQ(rec.user_id, 3u);
  EXPECT_FALSE(rec.killed_by_limit);
  EXPECT_TRUE(loaded.records[1].killed_by_limit);
}

TEST(Swf, DerivedQuantities) {
  const auto rec = sample_record();
  EXPECT_DOUBLE_EQ(rec.start_time(), 130.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 430.0);
  EXPECT_DOUBLE_EQ(rec.service_time(), 300.0);
  EXPECT_DOUBLE_EQ(rec.response_time(), 330.0);
}

TEST(Swf, ParsesStandardFormatLine) {
  // A plain SWF line as found in the Parallel Workloads Archive.
  std::istringstream in(
      "; Comment line\n"
      "1 0 10 360 32 -1 -1 32 -1 -1 1 5 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  const auto& rec = trace.records[0];
  EXPECT_EQ(rec.job_id, 1u);
  EXPECT_DOUBLE_EQ(rec.submit_time, 0.0);
  EXPECT_DOUBLE_EQ(rec.start_time(), 10.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 370.0);
  EXPECT_EQ(rec.processors, 32u);
  EXPECT_EQ(rec.user_id, 5u);
}

TEST(Swf, NegativeWaitAndRunAreClamped) {
  std::istringstream in("1 50 -1 -1 8 -1 -1 8 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.records[0].start_time(), 50.0);
  EXPECT_DOUBLE_EQ(trace.records[0].service_time(), 0.0);
}

TEST(Swf, FallsBackToRequestedProcessors) {
  // Allocated procs (field 5) missing -> use requested (field 8).
  std::istringstream in("1 0 0 10 -1 -1 -1 24 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  EXPECT_EQ(trace.records[0].processors, 24u);
}

TEST(Swf, SkipsBlankLines) {
  std::istringstream in("\n\n1 0 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n\n");
  EXPECT_EQ(read_swf(in).records.size(), 1u);
}

TEST(Swf, MalformedLineThrows) {
  // Three fields fill job id / submit / wait; the processor count (fields 5
  // and 8) is still missing, so the record is unusable.
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::invalid_argument);
}

// --- hardening for real Parallel Workloads Archive logs -----------------

TEST(Swf, TolleratesCrlfLineEndings) {
  std::istringstream in(
      "; archive log saved on Windows\r\n"
      "1 0 10 360 32 -1 -1 32 -1 -1 1 5 -1 -1 -1 -1 -1 -1\r\n"
      "\r\n"
      "2 5 0 60 8 -1 -1 8 -1 -1 1 2 -1 -1 -1 -1 -1 -1\r\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.records[0].processors, 32u);
  EXPECT_DOUBLE_EQ(trace.records[1].submit_time, 5.0);
  ASSERT_EQ(trace.header_comments.size(), 1u);
  EXPECT_EQ(trace.header_comments[0], "archive log saved on Windows");
}

TEST(Swf, TolleratesMidFileComments) {
  std::istringstream in(
      "1 0 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "; a comment between records\n"
      "2 1 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  EXPECT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.header_comments.size(), 1u);
}

TEST(Swf, TruncatedLineReadsMissingTrailingFieldsAsUnknown) {
  // Some archive logs drop unused trailing columns. Eight fields are
  // enough for the model: status and user default to "unknown" (-1).
  std::istringstream in("9 100 5 60 16 -1 -1 16\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  const auto& rec = trace.records[0];
  EXPECT_EQ(rec.job_id, 9u);
  EXPECT_DOUBLE_EQ(rec.submit_time, 100.0);
  EXPECT_EQ(rec.processors, 16u);
  EXPECT_EQ(rec.user_id, 0u);  // -1 maps to user 0
  EXPECT_FALSE(rec.killed_by_limit);
}

TEST(Swf, ExtraFieldsThrow) {
  std::istringstream in(
      "1 0 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1 99\n");
  EXPECT_THROW(read_swf(in), std::invalid_argument);
}

TEST(Swf, NonNumericFieldReportsSourceAndLine) {
  std::istringstream in(
      "1 0 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "2 0 0 oops 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  try {
    read_swf(in, "jobs.swf");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("jobs.swf:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("field 4"), std::string::npos) << what;
    EXPECT_NE(what.find("oops"), std::string::npos) << what;
  }
}

TEST(Swf, PartiallyNumericTokenThrows) {
  // strtod would happily parse the "12" prefix of "12x"; the reader must
  // insist on full-token consumption.
  std::istringstream in("1 0 0 12x 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(in), std::invalid_argument);
}

TEST(Swf, MissingProcessorCountNamesLine) {
  // Both field 5 and field 8 say "unknown": nothing to schedule.
  std::istringstream in("1 0 0 10 -1 -1 -1 -1 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  try {
    read_swf(in, "p.swf");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("p.swf:1:"), std::string::npos) << what;
    EXPECT_NE(what.find("processor count"), std::string::npos) << what;
  }
}

TEST(Swf, FileParseErrorNamesThePath) {
  const std::string path = ::testing::TempDir() + "/mcsim_swf_bad.swf";
  {
    std::ofstream out(path);
    out << "; header\n1 0 0 bad 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n";
  }
  try {
    read_swf_file(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path + ":2:"), std::string::npos) << what;
  }
}

TEST(Swf, TabSeparatedFieldsParse) {
  std::istringstream in("1\t0\t0\t10\t4\t-1\t-1\t4\t-1\t-1\t1\t0\t-1\t-1\t-1\t-1\t-1\t-1\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.records[0].processors, 4u);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path/trace.swf"), std::invalid_argument);
}

TEST(Swf, FileRoundTrip) {
  SwfTrace trace;
  trace.header_comments = {"file round trip"};
  trace.records = {sample_record()};
  const std::string path = ::testing::TempDir() + "/mcsim_swf_test.swf";
  write_swf_file(path, trace);
  const SwfTrace loaded = read_swf_file(path);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].processors, 16u);
}

}  // namespace
}  // namespace mcsim
