#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcsim {
namespace {

TraceRecord sample_record() {
  TraceRecord rec;
  rec.job_id = 7;
  rec.submit_time = 100.0;
  rec.wait_time = 30.0;   // starts at 130
  rec.run_time = 300.0;   // ends at 430
  rec.processors = 16;
  rec.user_id = 3;
  rec.killed_by_limit = false;
  return rec;
}

TEST(Swf, RoundTripPreservesFields) {
  SwfTrace trace;
  trace.header_comments = {"Synthetic log", "MaxNodes: 128"};
  trace.records = {sample_record()};
  auto killed = sample_record();
  killed.job_id = 8;
  killed.killed_by_limit = true;
  trace.records.push_back(killed);

  std::stringstream buffer;
  write_swf(buffer, trace);
  const SwfTrace loaded = read_swf(buffer);

  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.header_comments.size(), 2u);
  const auto& rec = loaded.records[0];
  EXPECT_EQ(rec.job_id, 7u);
  // Exact: the writer prints %.17g, so doubles survive the round trip.
  EXPECT_DOUBLE_EQ(rec.submit_time, 100.0);
  EXPECT_DOUBLE_EQ(rec.start_time(), 130.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 430.0);
  EXPECT_EQ(rec.processors, 16u);
  EXPECT_EQ(rec.user_id, 3u);
  EXPECT_FALSE(rec.killed_by_limit);
  EXPECT_TRUE(loaded.records[1].killed_by_limit);
}

TEST(Swf, DerivedQuantities) {
  const auto rec = sample_record();
  EXPECT_DOUBLE_EQ(rec.start_time(), 130.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 430.0);
  EXPECT_DOUBLE_EQ(rec.service_time(), 300.0);
  EXPECT_DOUBLE_EQ(rec.response_time(), 330.0);
}

TEST(Swf, ParsesStandardFormatLine) {
  // A plain SWF line as found in the Parallel Workloads Archive.
  std::istringstream in(
      "; Comment line\n"
      "1 0 10 360 32 -1 -1 32 -1 -1 1 5 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  const auto& rec = trace.records[0];
  EXPECT_EQ(rec.job_id, 1u);
  EXPECT_DOUBLE_EQ(rec.submit_time, 0.0);
  EXPECT_DOUBLE_EQ(rec.start_time(), 10.0);
  EXPECT_DOUBLE_EQ(rec.end_time(), 370.0);
  EXPECT_EQ(rec.processors, 32u);
  EXPECT_EQ(rec.user_id, 5u);
}

TEST(Swf, NegativeWaitAndRunAreClamped) {
  std::istringstream in("1 50 -1 -1 8 -1 -1 8 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.records[0].start_time(), 50.0);
  EXPECT_DOUBLE_EQ(trace.records[0].service_time(), 0.0);
}

TEST(Swf, FallsBackToRequestedProcessors) {
  // Allocated procs (field 5) missing -> use requested (field 8).
  std::istringstream in("1 0 0 10 -1 -1 -1 24 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const SwfTrace trace = read_swf(in);
  EXPECT_EQ(trace.records[0].processors, 24u);
}

TEST(Swf, SkipsBlankLines) {
  std::istringstream in("\n\n1 0 0 10 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n\n");
  EXPECT_EQ(read_swf(in).records.size(), 1u);
}

TEST(Swf, MalformedLineThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::invalid_argument);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path/trace.swf"), std::invalid_argument);
}

TEST(Swf, FileRoundTrip) {
  SwfTrace trace;
  trace.header_comments = {"file round trip"};
  trace.records = {sample_record()};
  const std::string path = ::testing::TempDir() + "/mcsim_swf_test.swf";
  write_swf_file(path, trace);
  const SwfTrace loaded = read_swf_file(path);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].processors, 16u);
}

}  // namespace
}  // namespace mcsim
