#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workload/arrival.hpp"
#include "workload/das_workload.hpp"
#include "workload/workload.hpp"

namespace mcsim {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.size_distribution = das_s_128();
  config.service_distribution = das_t_900();
  config.component_limit = 16;
  config.num_clusters = 4;
  config.extension_factor = 1.25;
  config.arrival_rate = 0.05;
  return config;
}

TEST(PoissonProcess, InterarrivalMeanMatchesRate) {
  PoissonProcess process(0.25);
  Rng rng(1);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += process.next_interarrival(0.0, rng);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
  EXPECT_DOUBLE_EQ(process.rate(), 0.25);
}

TEST(PoissonProcess, InvalidRateThrows) {
  EXPECT_THROW(PoissonProcess(0.0), std::invalid_argument);
}

TEST(PeriodicPoissonProcess, RespectsProfile) {
  // Profile 1 during the first half of the period, ~0 in the second half:
  // nearly all arrivals land in the first half.
  auto profile = +[](double t) { return t < 50.0 ? 1.0 : 0.01; };
  PeriodicPoissonProcess process(1.0, 100.0, profile);
  Rng rng(2);
  int first_half = 0, total = 0;
  double now = 0.0;
  for (int i = 0; i < 20000; ++i) {
    now += process.next_interarrival(now, rng);
    if (std::fmod(now, 100.0) < 50.0) ++first_half;
    ++total;
  }
  EXPECT_GT(static_cast<double>(first_half) / total, 0.9);
}

TEST(PeriodicPoissonProcess, MeanRateIsProfileAverage) {
  auto profile = +[](double) { return 0.5; };
  PeriodicPoissonProcess process(2.0, 100.0, profile);
  EXPECT_NEAR(process.rate(), 1.0, 0.01);
}

TEST(ArrivalRateForUtilization, InvertsTheLoadFormula) {
  // rho = lambda * E[ext_size] * E[service] / P.
  const double lambda = arrival_rate_for_gross_utilization(0.6, 128, 25.0, 160.0);
  EXPECT_NEAR(lambda * 25.0 * 160.0 / 128.0, 0.6, 1e-12);
}

TEST(WorkloadGenerator, ArrivalTimesStrictlyIncrease) {
  WorkloadGenerator gen(base_config(), 7);
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const JobSpec job = gen.next();
    EXPECT_GT(job.arrival_time, last);
    last = job.arrival_time;
  }
}

TEST(WorkloadGenerator, ArrivalRateRealized) {
  auto config = base_config();
  config.arrival_rate = 0.1;
  WorkloadGenerator gen(config, 11);
  double last = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) last = gen.next().arrival_time;
  EXPECT_NEAR(kN / last, 0.1, 0.005);
}

TEST(WorkloadGenerator, ComponentsFollowSplitter) {
  WorkloadGenerator gen(base_config(), 13);
  for (int i = 0; i < 2000; ++i) {
    const JobSpec job = gen.next();
    std::uint32_t sum = 0;
    for (std::uint32_t c : job.components) sum += c;
    EXPECT_EQ(sum, job.total_size);
    EXPECT_LE(job.components.size(), 4u);
    // Gross service extended exactly for multi-component jobs.
    if (job.components.size() > 1) {
      EXPECT_NEAR(job.gross_service_time, job.service_time * 1.25, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(job.gross_service_time, job.service_time);
    }
  }
}

TEST(WorkloadGenerator, TotalRequestsWhenSplitDisabled) {
  auto config = base_config();
  config.split_jobs = false;
  config.num_clusters = 1;
  WorkloadGenerator gen(config, 17);
  for (int i = 0; i < 500; ++i) {
    const JobSpec job = gen.next();
    ASSERT_EQ(job.components.size(), 1u);
    EXPECT_EQ(job.components[0], job.total_size);
    EXPECT_DOUBLE_EQ(job.gross_service_time, job.service_time);
  }
}

TEST(WorkloadGenerator, BalancedQueueAssignment) {
  WorkloadGenerator gen(base_config(), 19);
  std::map<std::uint32_t, int> counts;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[gen.next().origin_queue];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [queue, count] : counts) {
    EXPECT_NEAR(count / double(kN), 0.25, 0.01) << "queue " << queue;
  }
}

TEST(WorkloadGenerator, UnbalancedQueueAssignment) {
  auto config = base_config();
  config.queue_weights = {0.4, 0.2, 0.2, 0.2};
  WorkloadGenerator gen(config, 23);
  std::map<std::uint32_t, int> counts;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[gen.next().origin_queue];
  EXPECT_NEAR(counts[0] / double(kN), 0.4, 0.01);
  EXPECT_NEAR(counts[1] / double(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[3] / double(kN), 0.2, 0.01);
}

TEST(WorkloadGenerator, CommonRandomNumbersAcrossArrivalRates) {
  // Same master seed, different arrival rates: the k-th job must have the
  // same size, components, service time and origin queue.
  auto slow = base_config();
  slow.arrival_rate = 0.01;
  auto fast = base_config();
  fast.arrival_rate = 1.0;
  WorkloadGenerator a(slow, 31);
  WorkloadGenerator b(fast, 31);
  for (int i = 0; i < 1000; ++i) {
    const JobSpec ja = a.next();
    const JobSpec jb = b.next();
    EXPECT_EQ(ja.total_size, jb.total_size);
    EXPECT_EQ(ja.components, jb.components);
    EXPECT_DOUBLE_EQ(ja.service_time, jb.service_time);
    EXPECT_EQ(ja.origin_queue, jb.origin_queue);
    EXPECT_NE(ja.arrival_time, jb.arrival_time);
  }
}

TEST(WorkloadGenerator, NextBodyDoesNotAdvanceClock) {
  WorkloadGenerator gen(base_config(), 37);
  const JobSpec body = gen.next_body();
  EXPECT_DOUBLE_EQ(body.arrival_time, 0.0);
  EXPECT_GT(body.total_size, 0u);
}

TEST(WorkloadGenerator, IdsAreSequential) {
  WorkloadGenerator gen(base_config(), 41);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(gen.next().id, i);
  EXPECT_EQ(gen.jobs_generated(), 100u);
}

TEST(WorkloadGenerator, MeanExtendedSizeMatchesEmpirical) {
  auto config = base_config();
  WorkloadGenerator gen(config, 43);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const JobSpec job = gen.next_body();
    sum += job.total_size * (job.components.size() > 1 ? 1.25 : 1.0);
  }
  EXPECT_NEAR(sum / kN, config.mean_extended_size(), 0.01 * config.mean_extended_size());
}

TEST(WorkloadConfig, RateForGrossUtilizationInverts) {
  auto config = base_config();
  const double rate = config.rate_for_gross_utilization(0.5, 128);
  const double rho =
      rate * config.mean_extended_size() * config.service_distribution->mean() / 128.0;
  EXPECT_NEAR(rho, 0.5, 1e-12);
}

TEST(WorkloadGenerator, InvalidConfigThrows) {
  auto config = base_config();
  config.queue_weights = {1.0, 1.0};  // wrong length
  EXPECT_THROW(WorkloadGenerator(config, 1), std::invalid_argument);

  auto config2 = base_config();
  config2.arrival_rate = 0.0;
  EXPECT_THROW(WorkloadGenerator(config2, 1), std::invalid_argument);

  auto config3 = base_config();
  config3.service_distribution = nullptr;
  EXPECT_THROW(WorkloadGenerator(config3, 1), std::invalid_argument);

  auto config4 = base_config();
  config4.extension_factor = 0.9;
  EXPECT_THROW(WorkloadGenerator(config4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
