#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace mcsim {
namespace {

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("abc"), "abc");
  EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscape, QuotesFieldsWithCommas) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, DoublesEmbeddedQuotes) { EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvEscape, QuotesNewlines) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.add(std::int64_t{1}).add(2.5, 1);
  csv.end_row();
  EXPECT_EQ(out.str(), "x,y\n1,2.5\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, RowConvenience) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b,c"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n");
}

TEST(CsvWriter, UnsignedAndPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.add(std::uint64_t{18446744073709551615ULL}).add(1.0 / 3.0, 4);
  csv.end_row();
  EXPECT_EQ(out.str(), "18446744073709551615,0.3333\n");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"b", "22.75"});
  const std::string text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Numeric column is right-aligned: "  1.5" under "value".
  EXPECT_NE(text.find("  1.5"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, EmptyColumnsThrow) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TextTable, CountsRows) {
  TextTable table({"a"});
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace mcsim
