#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.hpp"

namespace mcsim {
namespace {

// ---- Parameterized moment check: every distribution's sample mean and
// variance must converge to its analytic mean()/variance(). ----

struct MomentCase {
  std::string name;
  DistributionPtr dist;
  double mean_tol;  // relative
  double var_tol;   // relative
};

class DistributionMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(DistributionMoments, SampleMomentsMatchAnalytic) {
  const auto& param = GetParam();
  Rng rng(123456);
  constexpr int kN = 400000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = param.dist->sample(rng);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, param.dist->mean(), param.mean_tol * std::max(1.0, param.dist->mean()))
      << param.name;
  if (param.dist->variance() > 0.0) {
    EXPECT_NEAR(var, param.dist->variance(), param.var_tol * param.dist->variance())
        << param.name;
  } else {
    EXPECT_NEAR(var, 0.0, 1e-9) << param.name;
  }
}

std::vector<MomentCase> moment_cases() {
  std::vector<MomentCase> cases;
  cases.push_back({"deterministic", std::make_shared<DeterministicDistribution>(5.0), 1e-12, 0.0});
  cases.push_back({"uniform", std::make_shared<UniformRealDistribution>(2.0, 10.0), 0.01, 0.02});
  cases.push_back({"exponential", std::make_shared<ExponentialDistribution>(7.0), 0.01, 0.03});
  cases.push_back(
      {"hyperexp", std::make_shared<HyperExponentialDistribution>(0.7, 1.0, 20.0), 0.02, 0.05});
  cases.push_back({"lognormal", std::make_shared<LognormalDistribution>(1.0, 0.5), 0.01, 0.05});
  cases.push_back({"lognormal_from_mean_cv",
                   std::make_shared<LognormalDistribution>(
                       LognormalDistribution::from_mean_cv(100.0, 1.5)),
                   0.02, 0.1});
  cases.push_back({"weibull", std::make_shared<WeibullDistribution>(1.5, 3.0), 0.01, 0.05});
  cases.push_back(
      {"bounded_pareto", std::make_shared<BoundedParetoDistribution>(1.0, 1000.0, 1.2), 0.03, 0.2});
  cases.push_back({"mixture",
                   std::make_shared<MixtureDistribution>(
                       std::vector<DistributionPtr>{
                           std::make_shared<ExponentialDistribution>(1.0),
                           std::make_shared<ExponentialDistribution>(50.0)},
                       std::vector<double>{0.8, 0.2}),
                   0.02, 0.05});
  cases.push_back({"scaled",
                   std::make_shared<ScaledDistribution>(
                       std::make_shared<ExponentialDistribution>(4.0), 1.25),
                   0.01, 0.03});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionMoments,
                         ::testing::ValuesIn(moment_cases()),
                         [](const ::testing::TestParamInfo<MomentCase>& info) {
                           return info.param.name;
                         });

// ---- Targeted behaviour tests. ----

TEST(LognormalFromMeanCv, HitsRequestedMoments) {
  const auto d = LognormalDistribution::from_mean_cv(200.0, 2.0);
  EXPECT_NEAR(d.mean(), 200.0, 1e-9);
  EXPECT_NEAR(d.cv(), 2.0, 1e-9);
}

TEST(HyperExponential, CvExceedsOne) {
  HyperExponentialDistribution d(0.9, 1.0, 100.0);
  EXPECT_GT(d.cv(), 1.0);
}

TEST(Exponential, CvIsOne) {
  ExponentialDistribution d(42.0);
  EXPECT_NEAR(d.cv(), 1.0, 1e-12);
}

TEST(Truncated, SamplesStayInRange) {
  auto inner = std::make_shared<ExponentialDistribution>(500.0);
  TruncatedDistribution d(inner, 1.0, 900.0);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 900.0);
  }
}

TEST(Truncated, MeanBelowUntruncatedMeanForRightCut) {
  auto inner = std::make_shared<ExponentialDistribution>(500.0);
  TruncatedDistribution d(inner, 0.0, 900.0);
  EXPECT_LT(d.mean(), 500.0);
  EXPECT_GT(d.mean(), 0.0);
}

TEST(Truncated, MonteCarloMomentsAreDeterministic) {
  auto inner = std::make_shared<ExponentialDistribution>(100.0);
  TruncatedDistribution a(inner, 1.0, 900.0);
  TruncatedDistribution b(inner, 1.0, 900.0);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(Truncated, SampleMeanMatchesReportedMean) {
  auto inner = std::make_shared<LognormalDistribution>(
      LognormalDistribution::from_mean_cv(300.0, 2.0));
  TruncatedDistribution d(inner, 1.0, 900.0);
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, d.mean(), 0.02 * d.mean());
}

TEST(Mixture, WeightsAreNormalized) {
  MixtureDistribution d(
      {std::make_shared<DeterministicDistribution>(1.0),
       std::make_shared<DeterministicDistribution>(3.0)},
      {2.0, 6.0});  // normalizes to 0.25/0.75
  EXPECT_NEAR(d.mean(), 0.25 * 1.0 + 0.75 * 3.0, 1e-12);
}

TEST(Mixture, MismatchedSizesThrow) {
  EXPECT_THROW(MixtureDistribution({std::make_shared<DeterministicDistribution>(1.0)},
                                   {0.5, 0.5}),
               std::invalid_argument);
}

TEST(Mixture, AllZeroWeightsThrow) {
  EXPECT_THROW(MixtureDistribution({std::make_shared<DeterministicDistribution>(1.0)}, {0.0}),
               std::invalid_argument);
}

TEST(Scaled, ScalesSamplesAndMoments) {
  auto inner = std::make_shared<DeterministicDistribution>(4.0);
  ScaledDistribution d(inner, 1.25);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(BoundedPareto, SamplesStayInRange) {
  BoundedParetoDistribution d(2.0, 64.0, 1.1);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 64.0);
  }
}

TEST(InvalidParameters, Throw) {
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
  EXPECT_THROW(UniformRealDistribution(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(HyperExponentialDistribution(1.5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LognormalDistribution(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(WeibullDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ScaledDistribution(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedDistribution(nullptr, 0.0, 1.0), std::invalid_argument);
}

TEST(Describe, MentionsTheFamily) {
  EXPECT_NE(ExponentialDistribution(2.0).describe().find("Exponential"), std::string::npos);
  EXPECT_NE(LognormalDistribution(1.0, 1.0).describe().find("Lognormal"), std::string::npos);
  EXPECT_NE(WeibullDistribution(1.0, 1.0).describe().find("Weibull"), std::string::npos);
}

}  // namespace
}  // namespace mcsim
