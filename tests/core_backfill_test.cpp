#include <gtest/gtest.h>

#include "policy/composed_scheduler.hpp"
#include "policy/scheduler_factory.hpp"
#include "exp/scenario.hpp"
#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_policy;
using testing::make_job;

TEST(BackfillModeName, Names) {
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kNone), "fcfs");
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kAggressive), "aggressive-bf");
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kEasy), "easy-bf");
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kConservative),
               "conservative-bf");
}

TEST(AggressiveBackfill, StartsSmallJobsPastBlockedHead) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kAggressive);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}));
  policy.submit(make_job(2, {100}));  // blocked head (only 28 idle)
  policy.submit(make_job(3, {20}));   // backfills
  policy.submit(make_job(4, {20}));   // does not fit (8 idle)
  policy.submit(make_job(5, {8}));    // backfills
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
  EXPECT_EQ(policy.queued_jobs(), 2u);
}

TEST(AggressiveBackfill, PreservesFifoAmongFittingJobs) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kAggressive);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {120}));
  policy.submit(make_job(2, {60}));  // blocked
  policy.submit(make_job(3, {4}));
  policy.submit(make_job(4, {4}));
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 4u);
}

TEST(EasyBackfill, BackfillsOnlyWhenReservationHolds) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kEasy);
  ComposedScheduler& policy = *policy_owner;
  // Job 1 runs for 100 s on 100 CPUs; head job 2 needs 100 CPUs and gets a
  // reservation at t = 100 with 28 CPUs spare then.
  policy.submit(make_job(1, {100}, 0, /*service=*/100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));
  // Job 3: 20 CPUs for 50 s — ends before the reservation: backfills.
  policy.submit(make_job(3, {20}, 0, 50.0));
  // Job 4: 20 CPUs for 500 s — would overlap t=100 AND 20+20 > 28 spare:
  // must NOT backfill (it would delay the head).
  policy.submit(make_job(4, {20}, 0, 500.0));
  // Job 5: 8 CPUs for 500 s — overlaps but fits the remaining spare
  // (28 - 20 already taken? job 4 was rejected, spare still 28): backfills.
  policy.submit(make_job(5, {8}, 0, 500.0));
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
}

TEST(EasyBackfill, LongJobWithinSpareBackfills) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kEasy);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));  // reservation at 100, spare 28
  policy.submit(make_job(3, {28}, 0, 10000.0)); // long but within spare
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
}

TEST(EasyBackfill, SpareShrinksAsLongJobsBackfill) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kEasy);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));   // spare 28 at t=100
  policy.submit(make_job(3, {20}, 0, 10000.0));  // takes 20 of the spare
  policy.submit(make_job(4, {20}, 0, 10000.0));  // 20 > remaining 8: blocked
  policy.submit(make_job(5, {8}, 0, 10000.0));   // fits remaining spare
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
}

TEST(EasyBackfill, HeadStartsExactlyAtReservation) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kEasy);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));
  policy.submit(make_job(3, {20}, 0, 50.0));  // backfilled
  // Finish the backfilled job first, then job 1: the head must start.
  ctx.finish(ctx.started[1], policy);  // job 3 at t=50
  EXPECT_EQ(ctx.started.size(), 2u);
  ctx.finish(ctx.started[0], policy);  // job 1 at t=100
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 2u);
}

TEST(ConservativeBackfill, FillerMustClearEveryReservation) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kConservative);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {128}, 0, 100.0));  // head: reserved [100, 200)
  // Job 3 fits the 28 idle CPUs right now, but its 150 s window crosses the
  // head's whole-machine reservation — aggressive would start it,
  // conservative must not.
  policy.submit(make_job(3, {28}, 0, 150.0));
  EXPECT_EQ(ctx.started.size(), 1u);
  // Job 4 finishes at t=50, before the reservation: backfills.
  policy.submit(make_job(4, {28}, 0, 50.0));
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 4u);
  EXPECT_EQ(policy.queued_jobs(), 2u);
}

TEST(ConservativeBackfill, ProtectsIntermediateReservationsUnlikeEasy) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kConservative);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {64}, 0, 100.0));
  policy.submit(make_job(2, {96}, 0, 100.0));   // head: reserved [100, 200)
  policy.submit(make_job(3, {128}, 0, 300.0));  // reserved [200, 500)
  // Job 4 stays within the head's 32-CPU spare — EASY would start it and
  // push job 3 back indefinitely. Conservative holds job 3's slot.
  policy.submit(make_job(4, {32}, 0, 250.0));
  EXPECT_EQ(ctx.started.size(), 1u);
  // A filler that drains before every reservation still goes through.
  policy.submit(make_job(5, {32}, 0, 50.0));
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 5u);
}

TEST(ConservativeBackfill, HeadStartsWhenCapacityFrees) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kConservative);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {128}, 0, 100.0));
  policy.submit(make_job(3, {28}, 0, 50.0));  // backfilled
  ctx.finish(ctx.started[1], policy);  // job 3 at t=50: head still blocked
  EXPECT_EQ(ctx.started.size(), 2u);
  ctx.finish(ctx.started[0], policy);  // job 1 at t=100: whole machine free
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 2u);
}

TEST(Backfill, FactoryNamesAndGuards) {
  FakeContext single({128});
  EXPECT_EQ(make_scheduler(PolicyKind::kSC, single, PlacementRule::kWorstFit,
                           BackfillMode::kEasy)
                ->name(),
            "SC+easy-bf");
  FakeContext multi({32, 32, 32, 32});
  EXPECT_EQ(make_scheduler(PolicyKind::kGS, multi, PlacementRule::kWorstFit,
                           BackfillMode::kAggressive)
                ->name(),
            "GS+aggressive-bf");
  EXPECT_EQ(make_scheduler(PolicyKind::kSC, single, PlacementRule::kWorstFit,
                           BackfillMode::kConservative)
                ->name(),
            "SC+conservative-bf");
  EXPECT_THROW(make_scheduler(PolicyKind::kLS, multi, PlacementRule::kWorstFit,
                              BackfillMode::kEasy),
               std::invalid_argument);
  EXPECT_THROW(make_scheduler(PolicyKind::kLP, multi, PlacementRule::kWorstFit,
                              BackfillMode::kConservative),
               std::invalid_argument);
}

TEST(Backfill, MulticlusterAggressiveRespectsPlacement) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kAggressive);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32}));  // clusters 0,1,2
  policy.submit(make_job(2, {32, 32}));      // blocked: needs two clusters
  policy.submit(make_job(3, {16, 16}));      // needs two clusters too: blocked
  policy.submit(make_job(4, {16}));          // fits cluster 3: backfills
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 4u);
}

TEST(Backfill, EndToEndScEasyBeatsScFcfsUnderLoad) {
  // The Sect. 3.2 connection: SC's weakness is head-of-line blocking by
  // very large jobs; EASY backfilling removes most of it.
  PaperScenario scenario;
  scenario.policy = PolicyKind::kSC;
  auto fcfs = make_paper_config(scenario, 0.68, 15000, 9);
  auto easy = fcfs;
  easy.backfill = BackfillMode::kEasy;
  const auto fcfs_result = run_simulation(fcfs);
  const auto easy_result = run_simulation(easy);
  ASSERT_FALSE(easy_result.unstable);
  const double fcfs_response = fcfs_result.unstable
                                   ? std::numeric_limits<double>::infinity()
                                   : fcfs_result.mean_response();
  EXPECT_LT(easy_result.mean_response(), fcfs_response);
}

TEST(Backfill, EndToEndDeterministic) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  auto config = make_paper_config(scenario, 0.5, 5000, 3);
  config.backfill = BackfillMode::kEasy;
  const auto a = run_simulation(config);
  const auto b = run_simulation(config);
  EXPECT_DOUBLE_EQ(a.mean_response(), b.mean_response());
}

}  // namespace
}  // namespace mcsim
