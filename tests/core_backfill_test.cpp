#include <gtest/gtest.h>

#include "core/policy_gs.hpp"
#include "core/scheduler_factory.hpp"
#include "exp/scenario.hpp"
#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_job;

TEST(BackfillModeName, Names) {
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kNone), "fcfs");
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kAggressive), "aggressive-bf");
  EXPECT_STREQ(backfill_mode_name(BackfillMode::kEasy), "easy-bf");
}

TEST(AggressiveBackfill, StartsSmallJobsPastBlockedHead) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kAggressive);
  policy.submit(make_job(1, {100}));
  policy.submit(make_job(2, {100}));  // blocked head (only 28 idle)
  policy.submit(make_job(3, {20}));   // backfills
  policy.submit(make_job(4, {20}));   // does not fit (8 idle)
  policy.submit(make_job(5, {8}));    // backfills
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
  EXPECT_EQ(policy.queued_jobs(), 2u);
}

TEST(AggressiveBackfill, PreservesFifoAmongFittingJobs) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kAggressive);
  policy.submit(make_job(1, {120}));
  policy.submit(make_job(2, {60}));  // blocked
  policy.submit(make_job(3, {4}));
  policy.submit(make_job(4, {4}));
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 4u);
}

TEST(EasyBackfill, BackfillsOnlyWhenReservationHolds) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kEasy);
  // Job 1 runs for 100 s on 100 CPUs; head job 2 needs 100 CPUs and gets a
  // reservation at t = 100 with 28 CPUs spare then.
  policy.submit(make_job(1, {100}, 0, /*service=*/100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));
  // Job 3: 20 CPUs for 50 s — ends before the reservation: backfills.
  policy.submit(make_job(3, {20}, 0, 50.0));
  // Job 4: 20 CPUs for 500 s — would overlap t=100 AND 20+20 > 28 spare:
  // must NOT backfill (it would delay the head).
  policy.submit(make_job(4, {20}, 0, 500.0));
  // Job 5: 8 CPUs for 500 s — overlaps but fits the remaining spare
  // (28 - 20 already taken? job 4 was rejected, spare still 28): backfills.
  policy.submit(make_job(5, {8}, 0, 500.0));
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
}

TEST(EasyBackfill, LongJobWithinSpareBackfills) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kEasy);
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));  // reservation at 100, spare 28
  policy.submit(make_job(3, {28}, 0, 10000.0)); // long but within spare
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
}

TEST(EasyBackfill, SpareShrinksAsLongJobsBackfill) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kEasy);
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));   // spare 28 at t=100
  policy.submit(make_job(3, {20}, 0, 10000.0));  // takes 20 of the spare
  policy.submit(make_job(4, {20}, 0, 10000.0));  // 20 > remaining 8: blocked
  policy.submit(make_job(5, {8}, 0, 10000.0));   // fits remaining spare
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 5u);
}

TEST(EasyBackfill, HeadStartsExactlyAtReservation) {
  FakeContext ctx({128});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "SC", BackfillMode::kEasy);
  policy.submit(make_job(1, {100}, 0, 100.0));
  policy.submit(make_job(2, {100}, 0, 100.0));
  policy.submit(make_job(3, {20}, 0, 50.0));  // backfilled
  // Finish the backfilled job first, then job 1: the head must start.
  ctx.finish(ctx.started[1], policy);  // job 3 at t=50
  EXPECT_EQ(ctx.started.size(), 2u);
  ctx.finish(ctx.started[0], policy);  // job 1 at t=100
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 2u);
}

TEST(Backfill, FactoryNamesAndGuards) {
  FakeContext single({128});
  EXPECT_EQ(make_scheduler(PolicyKind::kSC, single, PlacementRule::kWorstFit,
                           BackfillMode::kEasy)
                ->name(),
            "SC+easy-bf");
  FakeContext multi({32, 32, 32, 32});
  EXPECT_EQ(make_scheduler(PolicyKind::kGS, multi, PlacementRule::kWorstFit,
                           BackfillMode::kAggressive)
                ->name(),
            "GS+aggressive-bf");
  EXPECT_THROW(make_scheduler(PolicyKind::kLS, multi, PlacementRule::kWorstFit,
                              BackfillMode::kEasy),
               std::invalid_argument);
}

TEST(Backfill, MulticlusterAggressiveRespectsPlacement) {
  FakeContext ctx({32, 32, 32, 32});
  PolicyGs policy(ctx, PlacementRule::kWorstFit, "GS", BackfillMode::kAggressive);
  policy.submit(make_job(1, {32, 32, 32}));  // clusters 0,1,2
  policy.submit(make_job(2, {32, 32}));      // blocked: needs two clusters
  policy.submit(make_job(3, {16, 16}));      // needs two clusters too: blocked
  policy.submit(make_job(4, {16}));          // fits cluster 3: backfills
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 4u);
}

TEST(Backfill, EndToEndScEasyBeatsScFcfsUnderLoad) {
  // The Sect. 3.2 connection: SC's weakness is head-of-line blocking by
  // very large jobs; EASY backfilling removes most of it.
  PaperScenario scenario;
  scenario.policy = PolicyKind::kSC;
  auto fcfs = make_paper_config(scenario, 0.68, 15000, 9);
  auto easy = fcfs;
  easy.backfill = BackfillMode::kEasy;
  const auto fcfs_result = run_simulation(fcfs);
  const auto easy_result = run_simulation(easy);
  ASSERT_FALSE(easy_result.unstable);
  const double fcfs_response = fcfs_result.unstable
                                   ? std::numeric_limits<double>::infinity()
                                   : fcfs_result.mean_response();
  EXPECT_LT(easy_result.mean_response(), fcfs_response);
}

TEST(Backfill, EndToEndDeterministic) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  auto config = make_paper_config(scenario, 0.5, 5000, 3);
  config.backfill = BackfillMode::kEasy;
  const auto a = run_simulation(config);
  const auto b = run_simulation(config);
  EXPECT_DOUBLE_EQ(a.mean_response(), b.mean_response());
}

}  // namespace
}  // namespace mcsim
