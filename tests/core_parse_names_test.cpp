// Exhaustive name <-> enum round trips for every enum the ScenarioSpec
// serializes: whatever *_name() prints, the matching parse_* must read
// back to the same enumerator (the property scenario/manifest JSON
// round-trips rest on), and unknown names must be rejected loudly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/placement.hpp"
#include "policy/scheduler.hpp"
#include "policy/scheduler_factory.hpp"
#include "workload/request.hpp"

namespace mcsim {
namespace {

TEST(ParseNames, PolicyKindRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    EXPECT_EQ(parse_policy_kind(policy_name(kind)), kind);
  }
}

TEST(ParseNames, PolicyKindIsCaseInsensitive) {
  EXPECT_EQ(parse_policy_kind("gs"), PolicyKind::kGS);
  EXPECT_EQ(parse_policy_kind("Sc"), PolicyKind::kSC);
}

TEST(ParseNames, PolicyKindRejectsUnknown) {
  EXPECT_THROW(parse_policy_kind(""), std::invalid_argument);
  EXPECT_THROW(parse_policy_kind("global"), std::invalid_argument);
}

TEST(ParseNames, PlacementRuleRoundTrip) {
  for (PlacementRule rule :
       {PlacementRule::kWorstFit, PlacementRule::kFirstFit, PlacementRule::kBestFit}) {
    EXPECT_EQ(parse_placement_rule(placement_rule_name(rule)), rule);
  }
}

TEST(ParseNames, PlacementRuleAcceptsLongForms) {
  EXPECT_EQ(parse_placement_rule("worst-fit"), PlacementRule::kWorstFit);
  EXPECT_EQ(parse_placement_rule("FirstFit"), PlacementRule::kFirstFit);
  EXPECT_EQ(parse_placement_rule("bf"), PlacementRule::kBestFit);
}

TEST(ParseNames, PlacementRuleRejectsUnknown) {
  EXPECT_THROW(parse_placement_rule("next-fit"), std::invalid_argument);
}

TEST(ParseNames, BackfillModeRoundTrip) {
  for (BackfillMode mode :
       {BackfillMode::kNone, BackfillMode::kAggressive, BackfillMode::kEasy}) {
    EXPECT_EQ(parse_backfill_mode(backfill_mode_name(mode)), mode);
  }
}

TEST(ParseNames, BackfillModeAcceptsShortForms) {
  EXPECT_EQ(parse_backfill_mode("none"), BackfillMode::kNone);
  EXPECT_EQ(parse_backfill_mode("aggressive"), BackfillMode::kAggressive);
  EXPECT_EQ(parse_backfill_mode("EASY"), BackfillMode::kEasy);
}

TEST(ParseNames, BackfillModeRejectsUnknown) {
  EXPECT_THROW(parse_backfill_mode("opportunistic"), std::invalid_argument);
}

TEST(ParseNames, ConservativeBackfillRoundTrip) {
  EXPECT_EQ(parse_backfill_mode("conservative"), BackfillMode::kConservative);
  EXPECT_EQ(parse_backfill_mode(backfill_mode_name(BackfillMode::kConservative)),
            BackfillMode::kConservative);
}

TEST(ParseNames, QueueDisciplineRoundTrip) {
  for (QueueDiscipline discipline :
       {QueueDiscipline::kFcfs, QueueDiscipline::kShortestJobFirst,
        QueueDiscipline::kLongestJobFirst, QueueDiscipline::kSmallestFirst,
        QueueDiscipline::kLargestFirst}) {
    EXPECT_EQ(parse_queue_discipline(queue_discipline_name(discipline)), discipline);
  }
}

TEST(ParseNames, QueueDisciplineAcceptsLongForms) {
  EXPECT_EQ(parse_queue_discipline("shortest-job-first"),
            QueueDiscipline::kShortestJobFirst);
  EXPECT_EQ(parse_queue_discipline("Longest-Job-First"),
            QueueDiscipline::kLongestJobFirst);
}

TEST(ParseNames, QueueDisciplineRejectsUnknown) {
  EXPECT_THROW(parse_queue_discipline("priority"), std::invalid_argument);
}

TEST(ParseNames, RequestTypeRoundTrip) {
  for (RequestType type : {RequestType::kOrdered, RequestType::kUnordered,
                           RequestType::kFlexible, RequestType::kTotal}) {
    EXPECT_EQ(parse_request_type(request_type_name(type)), type);
  }
}

}  // namespace
}  // namespace mcsim
