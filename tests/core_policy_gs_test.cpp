#include "policy/composed_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_policy;
using testing::make_job;

TEST(PolicyGs, StartsJobImmediatelyWhenItFits) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {16, 16}));
  ASSERT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(policy.queued_jobs(), 0u);
}

TEST(PolicyGs, HeadOfLineBlocking) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Fill the system.
  policy.submit(make_job(1, {32, 32, 32, 32}));
  ASSERT_EQ(ctx.started.size(), 1u);
  // A huge job blocks; a tiny job behind it must NOT start (no backfilling).
  policy.submit(make_job(2, {32, 32}));
  policy.submit(make_job(3, {1}));
  EXPECT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(policy.queued_jobs(), 2u);
}

TEST(PolicyGs, DepartureUnblocksQueueInFifoOrder) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32, 32}));
  policy.submit(make_job(2, {16, 16}));
  policy.submit(make_job(3, {8}));
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 2u);
  EXPECT_EQ(ctx.started[2]->spec.id, 3u);
}

TEST(PolicyGs, StartsMultipleFittingJobsOnOneEvent) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  for (std::uint64_t id = 1; id <= 4; ++id) policy.submit(make_job(id, {16}));
  EXPECT_EQ(ctx.started.size(), 4u);
}

TEST(PolicyGs, SingleComponentJobsPlacedByWorstFit) {
  FakeContext ctx({32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {10}));  // WF -> cluster 0 (tie, lower id)
  policy.submit(make_job(2, {10}));  // now cluster 1 has more idle
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[0]->allocation[0].cluster, 0u);
  EXPECT_EQ(ctx.started[1]->allocation[0].cluster, 1u);
}

TEST(PolicyGs, WorksAsSingleClusterSc) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx);
  ComposedScheduler& policy = *policy_owner;
  EXPECT_EQ(policy.name(), "SC");
  policy.submit(make_job(1, {128}));
  policy.submit(make_job(2, {1}));
  EXPECT_EQ(ctx.started.size(), 1u);  // head-of-line blocking on total requests
  ctx.finish(ctx.started[0], policy);
  EXPECT_EQ(ctx.started.size(), 2u);
}

TEST(PolicyGs, QueueLengthsReportSingleQueue) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32, 32}));
  policy.submit(make_job(2, {1}));
  policy.submit(make_job(3, {1}));
  EXPECT_EQ(policy.queue_lengths(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(policy.max_queue_length(), 2u);
}

TEST(PolicyGs, FcfsOrderPreservedAcrossPartialDrains) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kGS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32, 32}));
  policy.submit(make_job(2, {32, 32, 32, 32}));
  policy.submit(make_job(3, {1}));
  ctx.finish(ctx.started[0], policy);
  // Job 2 fills the system; job 3 still blocked behind nothing else.
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 2u);
  ctx.finish(ctx.started[1], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 3u);
}

}  // namespace
}  // namespace mcsim
