#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_at(2.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, HandlersCanScheduleChains) {
  Simulator sim;
  int count = 0;
  // A reusable self-scheduling handler needs a copyable callable type;
  // EventFn wraps a copy of it at each schedule (move-only itself).
  std::function<void()> tick = [&]() {
    ++count;
    if (count < 5) sim.schedule_in(1.0, [&] { tick(); });
  };
  sim.schedule_in(1.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFromWithinHandler) {
  Simulator sim;
  bool second_fired = false;
  EventId second = kNoEvent;
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(2.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> seen;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&seen, &sim] { seen.push_back(sim.now()); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock advances to the boundary
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, NullHandlerThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
  bool fired = false;
  sim.schedule_at(0.5, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// The batched tie drain (simulator.hpp, "Hot-path layout") must preserve
// the exact pre-batching semantics. The next three tests pin the corners:
// cancelling a batch mate, the pending counts observed mid-batch, and
// stop() leaving batch remnants that fire on re-entry.

TEST(Simulator, CancelBatchMateAtSameTimestamp) {
  Simulator sim;
  bool second_fired = false;
  bool third_fired = false;
  EventId second = kNoEvent;
  // All three share t=1.0, so they are drained as one batch; the first
  // handler cancels the second while it already sits in the batch buffer.
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(1.0, [&] { second_fired = true; });
  sim.schedule_at(1.0, [&] { third_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(third_fired);
  // The cancelled mate must not count as executed.
  EXPECT_EQ(sim.executed_events(), 2u);
  EXPECT_FALSE(sim.cancel(second));
}

TEST(Simulator, PendingEventsCountBatchRemnants) {
  Simulator sim;
  std::vector<std::size_t> pending;
  // Three ties at t=1 plus one later event: inside the i-th tie handler the
  // remaining batch mates are still pending, exactly as they were when the
  // calendar was popped one event at a time.
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(1.0, [&] { pending.push_back(sim.pending_events()); });
  }
  sim.schedule_at(2.0, [&] { pending.push_back(sim.pending_events()); });
  sim.run();
  EXPECT_EQ(pending, (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(Simulator, StopMidBatchResumesRemnantsInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.stop();
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.schedule_at(2.0, [&] { order.push_back(4); });
  sim.run();
  // stop() returns after the current handler; the undispatched batch mates
  // stay pending alongside the later event.
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.pending_events(), 3u);
  // Re-entering the loop drains the remnants in push order before advancing.
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, MMOneQueueMatchesTheory) {
  // M/M/1 sanity check of the whole engine: lambda = 0.5, mu = 1.0
  // -> utilization 0.5, mean number in system rho/(1-rho) = 1, mean
  // response time 1/(mu-lambda) = 2.
  Simulator sim;
  Rng rng(2024);
  const double lambda = 0.5, mu = 1.0;
  int in_system = 0;
  double total_response = 0.0;
  int completed = 0;
  std::vector<double> queue_arrival_times;
  double busy_until = 0.0;

  std::function<void()> depart;
  std::function<void()> arrive = [&] {
    const double now = sim.now();
    // Departure for this job: starts after the server frees up.
    const double start = std::max(now, busy_until);
    const double service = rng.exponential_mean(1.0 / mu);
    busy_until = start + service;
    ++in_system;
    sim.schedule_at(busy_until, [&, arrival = now] {
      --in_system;
      total_response += sim.now() - arrival;
      ++completed;
    });
    if (completed + in_system < 20000) sim.schedule_in(rng.exponential_mean(1.0 / lambda), arrive);
  };
  sim.schedule_in(rng.exponential_mean(1.0 / lambda), arrive);
  sim.run();
  EXPECT_GE(completed, 19000);
  EXPECT_NEAR(total_response / completed, 2.0, 0.25);
}

}  // namespace
}  // namespace mcsim
