#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_at(2.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, HandlersCanScheduleChains) {
  Simulator sim;
  int count = 0;
  EventHandler tick = [&]() {
    ++count;
    if (count < 5) sim.schedule_in(1.0, [&] { tick(); });
  };
  sim.schedule_in(1.0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFromWithinHandler) {
  Simulator sim;
  bool second_fired = false;
  EventId second = kNoEvent;
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  second = sim.schedule_at(2.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> seen;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&seen, &sim] { seen.push_back(sim.now()); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock advances to the boundary
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, NullHandlerThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
  bool fired = false;
  sim.schedule_at(0.5, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, MMOneQueueMatchesTheory) {
  // M/M/1 sanity check of the whole engine: lambda = 0.5, mu = 1.0
  // -> utilization 0.5, mean number in system rho/(1-rho) = 1, mean
  // response time 1/(mu-lambda) = 2.
  Simulator sim;
  Rng rng(2024);
  const double lambda = 0.5, mu = 1.0;
  int in_system = 0;
  double total_response = 0.0;
  int completed = 0;
  std::vector<double> queue_arrival_times;
  double busy_until = 0.0;

  std::function<void()> depart;
  std::function<void()> arrive = [&] {
    const double now = sim.now();
    // Departure for this job: starts after the server frees up.
    const double start = std::max(now, busy_until);
    const double service = rng.exponential_mean(1.0 / mu);
    busy_until = start + service;
    ++in_system;
    sim.schedule_at(busy_until, [&, arrival = now] {
      --in_system;
      total_response += sim.now() - arrival;
      ++completed;
    });
    if (completed + in_system < 20000) sim.schedule_in(rng.exponential_mean(1.0 / lambda), arrive);
  };
  sim.schedule_in(rng.exponential_mean(1.0 / lambda), arrive);
  sim.run();
  EXPECT_GE(completed, 19000);
  EXPECT_NEAR(total_response / completed, 2.0, 0.25);
}

}  // namespace
}  // namespace mcsim
