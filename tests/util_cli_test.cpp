#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcsim {
namespace {

CliParser make_parser() {
  CliParser parser("test program");
  parser.add_option("jobs", "1000", "number of jobs");
  parser.add_option("policy", "GS", "policy name");
  parser.add_option("rho", "0.5", "utilization");
  parser.add_flag("verbose", "log more");
  return parser;
}

TEST(CliParser, DefaultsApplyWhenUnset) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get("policy"), "GS");
  EXPECT_EQ(parser.get_int("jobs"), 1000);
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.5);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(CliParser, EqualsSyntax) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs=42", "--policy=LS"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("jobs"), 42);
  EXPECT_EQ(parser.get("policy"), "LS");
}

TEST(CliParser, SpaceSyntax) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs", "7", "--rho", "0.85"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("jobs"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.85);
}

TEST(CliParser, FlagsAndPositionals) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose", "input.swf", "other"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_TRUE(parser.get_flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.swf");
}

TEST(CliParser, UnknownOptionThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

// -- the exit-code convention (0 ok, 1 runtime, 2 usage) --------------------
// Pinned here and re-checked end-to-end by the serve-smoke CI job: argv
// mistakes exit 2, everything else that escapes exits 1.

TEST(CliExitCode, UsageErrorsMapToTwo) {
  EXPECT_EQ(cli_exit_code(CliUsageError("mcsim: unknown option --nope")),
            kExitUsage);
}

TEST(CliExitCode, OtherExceptionsMapToOne) {
  EXPECT_EQ(cli_exit_code(std::runtime_error("trace unreadable")), kExitRuntime);
  // Plain invalid_argument is a *runtime* failure (e.g. a malformed data
  // file); only the CliUsageError subclass means "the command line is
  // wrong".
  EXPECT_EQ(cli_exit_code(std::invalid_argument("bad file")), kExitRuntime);
}

TEST(CliExitCode, ParserErrorsAreUsageErrors) {
  auto parser = make_parser();
  const char* unknown[] = {"prog", "--nope=1"};
  EXPECT_THROW(parser.parse(2, unknown), CliUsageError);
  const char* missing[] = {"prog", "--jobs"};
  EXPECT_THROW(parser.parse(2, missing), CliUsageError);
  const char* flagged[] = {"prog", "--verbose=1"};
  EXPECT_THROW(parser.parse(2, flagged), CliUsageError);
}

TEST(CliParser, MissingValueThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, FlagWithValueThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, NonNumericValueThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs=abc"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_THROW(parser.get_int("jobs"), std::invalid_argument);
}

TEST(CliParser, NegativeUintThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs=-3"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_THROW(parser.get_uint("jobs"), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parser.parse(2, argv));
  const std::string help = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("--policy"), std::string::npos);
}

TEST(CliParser, DuplicateDeclarationThrows) {
  CliParser parser("p");
  parser.add_option("x", "1", "");
  EXPECT_THROW(parser.add_option("x", "2", ""), std::invalid_argument);
  EXPECT_THROW(parser.add_flag("x", ""), std::invalid_argument);
}

TEST(CliParser, UndeclaredGetThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW(parser.get("missing"), std::invalid_argument);
  EXPECT_THROW(parser.get_flag("missing"), std::invalid_argument);
}

TEST(CliParser, LastValueWins) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--jobs=1", "--jobs=2"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("jobs"), 2);
}

}  // namespace
}  // namespace mcsim
