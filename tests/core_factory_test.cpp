#include "policy/scheduler_factory.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;

TEST(PolicyNames, RoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    EXPECT_EQ(parse_policy_kind(policy_name(kind)), kind);
  }
}

TEST(PolicyNames, CaseInsensitiveParse) {
  EXPECT_EQ(parse_policy_kind("ls"), PolicyKind::kLS);
  EXPECT_EQ(parse_policy_kind("Lp"), PolicyKind::kLP);
}

TEST(PolicyNames, UnknownThrows) {
  EXPECT_THROW(parse_policy_kind("FCFS"), std::invalid_argument);
}

TEST(Factory, BuildsEveryPolicy) {
  FakeContext multi({32, 32, 32, 32});
  EXPECT_EQ(make_scheduler(PolicyKind::kGS, multi)->name(), "GS");
  EXPECT_EQ(make_scheduler(PolicyKind::kLS, multi)->name(), "LS");
  EXPECT_EQ(make_scheduler(PolicyKind::kLP, multi)->name(), "LP");
  FakeContext single({128});
  EXPECT_EQ(make_scheduler(PolicyKind::kSC, single)->name(), "SC");
}

TEST(Factory, ScOnMulticlusterThrows) {
  FakeContext multi({32, 32});
  EXPECT_THROW(make_scheduler(PolicyKind::kSC, multi), std::invalid_argument);
}

TEST(Factory, SingleClusterPolicyPredicate) {
  EXPECT_TRUE(is_single_cluster_policy(PolicyKind::kSC));
  EXPECT_FALSE(is_single_cluster_policy(PolicyKind::kGS));
  EXPECT_FALSE(is_single_cluster_policy(PolicyKind::kLS));
  EXPECT_FALSE(is_single_cluster_policy(PolicyKind::kLP));
}

}  // namespace
}  // namespace mcsim
