#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BoundariesGoToUpperBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);  // exactly on the 0/1 boundary -> bin 1
  EXPECT_EQ(h.bin(0), 0u);
  EXPECT_EQ(h.bin(1), 1u);
}

TEST(Histogram, UnderflowAndOverflowCounted) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdgesAndMidpoints) {
  Histogram h(0.0, 900.0, 90);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(89), 890.0);
}

TEST(Histogram, FractionsNormalizeOverInRange) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(99.0);  // overflow, excluded from fractions
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 3.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(DiscreteHistogram, CountsAndFractions) {
  DiscreteHistogram h;
  h.add(64);
  h.add(64);
  h.add(1);
  EXPECT_EQ(h.count(64), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(64), 2.0 / 3.0);
  EXPECT_EQ(h.distinct_values(), 2u);
}

TEST(DiscreteHistogram, WeightedAdd) {
  DiscreteHistogram h;
  h.add(2, 10);
  h.add(4, 30);
  EXPECT_EQ(h.total(), 40u);
  EXPECT_DOUBLE_EQ(h.fraction(4), 0.75);
}

TEST(DiscreteHistogram, MeanAndCv) {
  DiscreteHistogram h;
  h.add(1, 1);
  h.add(3, 1);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  // Population stddev = 1, mean 2 -> CV 0.5.
  EXPECT_DOUBLE_EQ(h.cv(), 0.5);
}

TEST(DiscreteHistogram, EmptyIsSafe) {
  DiscreteHistogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.cv(), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

}  // namespace
}  // namespace mcsim
