// Streaming-equivalence gate: every checked-in SWF log, replayed through
// the bounded-lookahead streaming path, must produce the bit-identical
// canonical observation the legacy whole-file load produces. The
// whole-file delivery mode exists as a test-only hook exactly for this
// pin (ScenarioSpec::trace_whole_file, docs/WORKLOADS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/corpus.hpp"
#include "exp/golden.hpp"
#include "exp/scenario_spec.hpp"

#ifndef MCSIM_DATA_DIR
#define MCSIM_DATA_DIR "data"
#endif

namespace mcsim::exp {
namespace {

namespace fs = std::filesystem;

/// Every SWF log the repo checks in: the DAS1 synthetic sample plus the
/// archive-style corpus.
std::vector<std::string> checked_in_logs() {
  std::vector<std::string> logs = {
      std::string(MCSIM_DATA_DIR) + "/das1_synthetic_sample.swf"};
  const std::string corpus = std::string(MCSIM_DATA_DIR) + "/archive_samples";
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.is_regular_file() && entry.path().extension() == ".swf") {
      logs.push_back(entry.path().string());
    }
  }
  std::sort(logs.begin(), logs.end());
  return logs;
}

TEST(StreamingEquivalence, EveryCheckedInLogMatchesWholeFileBitExactly) {
  const std::vector<std::string> logs = checked_in_logs();
  ASSERT_GE(logs.size(), 5u) << "corpus went missing under " << MCSIM_DATA_DIR;

  for (const std::string& log : logs) {
    ScenarioSpec base;  // GS, worst-fit, the corpus defaults
    CorpusOptions streaming;
    CorpusOptions whole_file;
    whole_file.whole_file = true;

    const std::string streamed = corpus_log_observation(base, log, streaming);
    const std::string loaded = corpus_log_observation(base, log, whole_file);
    // String equality of the canonical observations = bit-identical
    // statistics, job for job (doubles print at round-trip precision).
    EXPECT_EQ(streamed, loaded) << "streaming replay of " << log
                                << " diverges from the whole-file load";
  }
}

TEST(StreamingEquivalence, TinyLookaheadWindowStillMatchesWhenLogIsSorted) {
  // The DAS1 sample is submit-sorted, so even a 2-record window must
  // reproduce the whole-file observation.
  const std::string log =
      std::string(MCSIM_DATA_DIR) + "/das1_synthetic_sample.swf";
  ScenarioSpec base;
  CorpusOptions tiny;
  tiny.lookahead = 2;
  CorpusOptions whole_file;
  whole_file.whole_file = true;
  EXPECT_EQ(corpus_log_observation(base, log, tiny),
            corpus_log_observation(base, log, whole_file));
}

TEST(StreamingEquivalence, ArchiveSampleNeedsTheLookaheadWindow) {
  // The archive samples are deliberately scrambled (bounded disorder), so
  // a 1-record window must trip the out-of-order guard — proving the
  // equivalence above exercises the re-sort, not already-sorted input.
  const std::string log =
      std::string(MCSIM_DATA_DIR) + "/archive_samples/sdsc_sp2_style.swf";
  ScenarioSpec base;
  CorpusOptions tiny;
  tiny.lookahead = 1;
  EXPECT_THROW(corpus_log_observation(base, log, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::exp
