#include "workload/user_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "trace/synthetic_log.hpp"
#include "stats/welford.hpp"
#include "trace/trace_stats.hpp"

namespace mcsim {
namespace {

TEST(UserWorkloadModel, SubmissionsAreTimeOrdered) {
  UserWorkloadModel model(UserModelConfig{}, 7);
  double last = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const auto submission = model.next();
    EXPECT_GE(submission.time, last);
    EXPECT_LT(submission.user, 20u);
    last = submission.time;
  }
}

TEST(UserWorkloadModel, DeterministicForSeed) {
  UserWorkloadModel a(UserModelConfig{}, 11);
  UserWorkloadModel b(UserModelConfig{}, 11);
  for (int i = 0; i < 1000; ++i) {
    const auto sa = a.next();
    const auto sb = b.next();
    EXPECT_DOUBLE_EQ(sa.time, sb.time);
    EXPECT_EQ(sa.user, sb.user);
  }
}

TEST(UserWorkloadModel, ActivityIsZipfSkewed) {
  UserModelConfig config;
  config.activity_skew = 1.0;
  UserWorkloadModel model(config, 13);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[model.next().user];
  // User 0 must dominate user 10 clearly.
  EXPECT_GT(counts[0], 3 * counts[10]);
}

TEST(UserWorkloadModel, NoSkewMeansRoughlyEqualActivity) {
  UserModelConfig config;
  config.activity_skew = 0.0;
  config.num_users = 4;
  UserWorkloadModel model(config, 17);
  std::map<std::uint32_t, int> counts;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[model.next().user];
  for (const auto& [user, count] : counts) {
    EXPECT_NEAR(count / double(kN), 0.25, 0.04) << "user " << user;
  }
}

TEST(UserWorkloadModel, SessionsProduceBurstyInterarrivals) {
  // Within-session gaps (think times ~300 s) and between-session gaps
  // (hours) make the interarrival distribution of a single user bimodal:
  // many short gaps, few very long ones — far from exponential.
  UserModelConfig config;
  config.num_users = 1;
  config.activity_skew = 0.0;
  UserWorkloadModel model(config, 19);
  std::vector<double> gaps;
  double last = model.next().time;
  for (int i = 0; i < 20000; ++i) {
    const double t = model.next().time;
    gaps.push_back(t - last);
    last = t;
  }
  const auto short_gaps = std::count_if(gaps.begin(), gaps.end(),
                                        [](double g) { return g < 1800.0; });
  const auto long_gaps = std::count_if(gaps.begin(), gaps.end(),
                                       [](double g) { return g > 2.0 * 3600.0; });
  EXPECT_GT(short_gaps, gaps.size() / 2);  // most gaps are think times
  EXPECT_GT(long_gaps, 100);               // but real breaks exist
  // Mean session length ~8 -> roughly 1/8 of gaps are breaks.
  EXPECT_NEAR(static_cast<double>(long_gaps) / gaps.size(), 1.0 / 8.0, 0.06);
}

TEST(UserWorkloadModel, MeanRateMatchesEmpirical) {
  UserModelConfig config;
  UserWorkloadModel model(config, 23);
  constexpr int kN = 50000;
  double last = 0.0;
  for (int i = 0; i < kN; ++i) last = model.next().time;
  EXPECT_NEAR(kN / last, model.mean_rate(), 0.15 * model.mean_rate());
}

TEST(UserWorkloadModel, InvalidConfigThrows) {
  UserModelConfig config;
  config.num_users = 0;
  EXPECT_THROW(UserWorkloadModel(config, 1), std::invalid_argument);
  config = UserModelConfig{};
  config.mean_session_jobs = 0.5;
  EXPECT_THROW(UserWorkloadModel(config, 1), std::invalid_argument);
}

TEST(SyntheticLogSessions, SessionModeProducesValidLog) {
  SyntheticLogConfig config;
  config.num_jobs = 5000;
  config.user_sessions = true;
  config.duration_seconds = 30.0 * 24 * 3600;
  config.seed = 3;
  const SwfTrace trace = generate_synthetic_das1_log(config);
  ASSERT_EQ(trace.records.size(), 5000u);
  const auto summary = summarize_trace(trace.records);
  EXPECT_EQ(summary.user_count, 20u);
  // Rescaled to the configured span.
  EXPECT_NEAR(trace.records.back().submit_time, config.duration_seconds,
              0.02 * config.duration_seconds);
  // Size distribution unchanged by the arrival model.
  EXPECT_NEAR(summary.power_of_two_fraction, 0.705, 0.03);
}

TEST(SyntheticLogSessions, SessionModeIsBurstierThanPoisson) {
  SyntheticLogConfig config;
  config.num_jobs = 8000;
  config.duration_seconds = 30.0 * 24 * 3600;
  config.seed = 5;
  const auto poisson = generate_synthetic_das1_log(config);
  config.user_sessions = true;
  const auto sessions = generate_synthetic_das1_log(config);

  auto interarrival_cv = [](const SwfTrace& trace) {
    RunningStats gaps;
    for (std::size_t i = 1; i < trace.records.size(); ++i) {
      gaps.add(trace.records[i].submit_time - trace.records[i - 1].submit_time);
    }
    return gaps.cv();
  };
  EXPECT_GT(interarrival_cv(sessions), interarrival_cv(poisson));
}

}  // namespace
}  // namespace mcsim
