#include "cluster/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(WorstFit, LargestComponentToMostIdleCluster) {
  const auto alloc = place_components({20, 10}, {5, 30, 25, 32});
  ASSERT_TRUE(alloc.has_value());
  ASSERT_EQ(alloc->size(), 2u);
  EXPECT_EQ((*alloc)[0].cluster, 3u);  // 32 idle gets the 20
  EXPECT_EQ((*alloc)[0].processors, 20u);
  EXPECT_EQ((*alloc)[1].cluster, 1u);  // 30 idle gets the 10
}

TEST(WorstFit, TieBreaksTowardLowerClusterId) {
  const auto alloc = place_components({8, 8}, {16, 16, 16, 16});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ((*alloc)[0].cluster, 0u);
  EXPECT_EQ((*alloc)[1].cluster, 1u);
}

TEST(WorstFit, ReportsNoFit) {
  EXPECT_FALSE(place_components({33}, {32, 32, 32, 32}).has_value());
  EXPECT_FALSE(place_components({20, 20}, {32, 16, 16, 16}).has_value());
}

TEST(WorstFit, FitEqualsExactCapacity) {
  const auto alloc = place_components({32, 32, 32, 32}, {32, 32, 32, 32});
  ASSERT_TRUE(alloc.has_value());
  std::set<ClusterId> used;
  for (const auto& p : *alloc) used.insert(p.cluster);
  EXPECT_EQ(used.size(), 4u);
}

TEST(WorstFit, PaperScenarioSize64Limit24DoesNotFitTwice) {
  // Sect. 3.3: after (22,21,21) is placed on an empty 4x32 system, another
  // (22,21,21) does not fit.
  const auto first = place_components({22, 21, 21}, {32, 32, 32, 32});
  ASSERT_TRUE(first.has_value());
  std::vector<std::uint32_t> idle{32, 32, 32, 32};
  for (const auto& p : *first) idle[p.cluster] -= p.processors;
  EXPECT_FALSE(place_components({22, 21, 21}, idle).has_value());
  // But under limit 32 the second (32,32) still fits after the first.
  std::vector<std::uint32_t> idle32{0, 0, 32, 32};
  EXPECT_TRUE(place_components({32, 32}, idle32).has_value());
}

TEST(FirstFit, UsesLowestFittingClusters) {
  const auto alloc =
      place_components({10, 10}, {12, 8, 16, 32}, PlacementRule::kFirstFit);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ((*alloc)[0].cluster, 0u);
  EXPECT_EQ((*alloc)[1].cluster, 2u);  // cluster 1 too small
}

TEST(BestFit, PicksTightestCluster) {
  const auto alloc = place_components({10}, {32, 11, 16, 30}, PlacementRule::kBestFit);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ((*alloc)[0].cluster, 1u);
}

TEST(BestFit, DistinctClustersForComponents) {
  const auto alloc =
      place_components({10, 10}, {10, 10, 32, 32}, PlacementRule::kBestFit);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_NE((*alloc)[0].cluster, (*alloc)[1].cluster);
  EXPECT_EQ((*alloc)[0].cluster, 0u);
  EXPECT_EQ((*alloc)[1].cluster, 1u);
}

TEST(PlaceOnCluster, RestrictsToNamedCluster) {
  const auto ok = place_on_cluster(16, 2, {0, 0, 20, 32});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ((*ok)[0].cluster, 2u);
  EXPECT_FALSE(place_on_cluster(25, 2, {0, 0, 20, 32}).has_value());
  EXPECT_THROW(place_on_cluster(1, 9, {0, 0}), std::invalid_argument);
}

TEST(ComponentsFit, AgreesWithWorstFitPlacement) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint32_t> idle(4);
    for (auto& x : idle) x = static_cast<std::uint32_t>(rng.uniform_int(33));
    const auto n = 1 + rng.uniform_int(4);
    std::vector<std::uint32_t> components(n);
    for (auto& c : components) c = 1 + static_cast<std::uint32_t>(rng.uniform_int(32));
    std::sort(components.rbegin(), components.rend());
    EXPECT_EQ(components_fit(components, idle),
              place_components(components, idle).has_value())
        << "trial " << trial;
  }
}

TEST(PlacementProperty, AllocationsAreValidAndDistinct) {
  Rng rng(505);
  for (PlacementRule rule :
       {PlacementRule::kWorstFit, PlacementRule::kFirstFit, PlacementRule::kBestFit}) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<std::uint32_t> idle(5);
      for (auto& x : idle) x = static_cast<std::uint32_t>(rng.uniform_int(33));
      const auto n = 1 + rng.uniform_int(4);
      std::vector<std::uint32_t> components(n);
      for (auto& c : components) c = 1 + static_cast<std::uint32_t>(rng.uniform_int(24));
      std::sort(components.rbegin(), components.rend());
      const auto alloc = place_components(components, idle, rule);
      if (!alloc) continue;
      std::set<ClusterId> used;
      for (std::size_t i = 0; i < alloc->size(); ++i) {
        const auto& p = (*alloc)[i];
        EXPECT_TRUE(used.insert(p.cluster).second) << "duplicate cluster";
        EXPECT_LE(p.processors, idle[p.cluster]) << "component over idle";
        EXPECT_EQ(p.processors, components[i]);
      }
    }
  }
}

TEST(PlacementProperty, WorstFitIsCompleteFitTest) {
  // If any rule fits, WF must fit (WF is complete for distinct-cluster
  // assignment of sorted components).
  Rng rng(606);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint32_t> idle(4);
    for (auto& x : idle) x = static_cast<std::uint32_t>(rng.uniform_int(33));
    const auto n = 1 + rng.uniform_int(4);
    std::vector<std::uint32_t> components(n);
    for (auto& c : components) c = 1 + static_cast<std::uint32_t>(rng.uniform_int(32));
    std::sort(components.rbegin(), components.rend());
    const bool wf = place_components(components, idle, PlacementRule::kWorstFit).has_value();
    const bool ff = place_components(components, idle, PlacementRule::kFirstFit).has_value();
    const bool bf = place_components(components, idle, PlacementRule::kBestFit).has_value();
    if (ff || bf) EXPECT_TRUE(wf) << "WF must dominate FF/BF on feasibility";
  }
}

TEST(Placement, PreconditionsThrow) {
  EXPECT_THROW(place_components({}, {32}), std::invalid_argument);
  EXPECT_THROW(place_components({1, 2}, {32, 32}), std::invalid_argument);  // increasing
  EXPECT_THROW(place_components({1, 1, 1}, {32, 32}), std::invalid_argument);  // too many
}

TEST(PlacementRuleName, Names) {
  EXPECT_STREQ(placement_rule_name(PlacementRule::kWorstFit), "WF");
  EXPECT_STREQ(placement_rule_name(PlacementRule::kFirstFit), "FF");
  EXPECT_STREQ(placement_rule_name(PlacementRule::kBestFit), "BF");
  EXPECT_STREQ(placement_rule_name(PlacementRule::kLoadAware), "LA");
  EXPECT_EQ(parse_placement_rule("la"), PlacementRule::kLoadAware);
  EXPECT_EQ(parse_placement_rule("load-aware"), PlacementRule::kLoadAware);
}

TEST(LoadAware, OrdersByIdleFractionNotAbsoluteIdle) {
  // Cluster 0: 20/64 idle (5/16); cluster 1: 18/32 idle (9/16). WF picks
  // cluster 0 (more idle processors); LA picks cluster 1 (higher idle
  // fraction).
  const std::vector<std::uint32_t> idle{20, 18};
  const std::vector<std::uint32_t> capacities{64, 32};
  PlacementScratch scratch;
  const auto la =
      place_components({10}, idle, capacities, PlacementRule::kLoadAware, scratch);
  ASSERT_TRUE(la.has_value());
  EXPECT_EQ((*la)[0].cluster, 1u);
  const auto wf =
      place_components({10}, idle, capacities, PlacementRule::kWorstFit, scratch);
  ASSERT_TRUE(wf.has_value());
  EXPECT_EQ((*wf)[0].cluster, 0u);
}

TEST(LoadAware, MatchesWorstFitOnHomogeneousCapacities) {
  // Equal capacities make idle/capacity order identical to idle order, so
  // LA and WF must make the same decisions.
  const std::vector<std::uint32_t> capacities{32, 32, 32, 32};
  PlacementScratch scratch;
  Rng rng(707);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint32_t> idle(4);
    for (auto& value : idle) value = static_cast<std::uint32_t>(rng.uniform_int(33));
    std::vector<std::uint32_t> components;
    const auto n = 1 + rng.uniform_int(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      components.push_back(1 + static_cast<std::uint32_t>(rng.uniform_int(24)));
    }
    std::sort(components.rbegin(), components.rend());
    const auto la = place_components(components, idle, capacities,
                                     PlacementRule::kLoadAware, scratch);
    const auto wf = place_components(components, idle, capacities,
                                     PlacementRule::kWorstFit, scratch);
    ASSERT_EQ(la.has_value(), wf.has_value());
    if (la) {
      for (std::size_t i = 0; i < la->size(); ++i) {
        EXPECT_EQ((*la)[i].cluster, (*wf)[i].cluster);
        EXPECT_EQ((*la)[i].processors, (*wf)[i].processors);
      }
    }
  }
}

TEST(LoadAware, FractionTieBreaksTowardLowerClusterId) {
  // 16/32 and 32/64 are the same fraction; the lower id must win.
  const std::vector<std::uint32_t> idle{32, 16};
  const std::vector<std::uint32_t> capacities{64, 32};
  PlacementScratch scratch;
  const auto alloc =
      place_components({8}, idle, capacities, PlacementRule::kLoadAware, scratch);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ((*alloc)[0].cluster, 0u);
}

TEST(LoadAware, RequiresTheCapacityAwareOverload) {
  // Without capacities there is no idle fraction to order by.
  EXPECT_THROW(place_components({8}, {32, 32}, PlacementRule::kLoadAware),
               std::invalid_argument);
  PlacementScratch scratch;
  EXPECT_THROW(
      place_components({8}, {32, 32}, PlacementRule::kLoadAware, scratch),
      std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
