#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }  // restore default
};

TEST_F(LoggingTest, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseUnknownThrows) {
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedMessagesEmitNothing) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MCSIM_LOG(kDebug) << "invisible";
  MCSIM_LOG(kInfo) << "also invisible";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EnabledMessagesReachStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MCSIM_LOG(kInfo) << "ran " << 42 << " jobs";
  const std::string text = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(text.find("ran 42 jobs"), std::string::npos);
  EXPECT_NE(text.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysVisibleBelowOff) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  MCSIM_LOG(kError) << "boom";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("boom"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  MCSIM_LOG(kError) << "never";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, StreamSideEffectsSkippedWhenSuppressed) {
  // The MCSIM_LOG macro must not evaluate its stream expression when the
  // level is filtered out (it is an if-else, not a function call).
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return "x";
  };
  MCSIM_LOG(kDebug) << touch();
  EXPECT_EQ(evaluations, 0);
  MCSIM_LOG(kError) << touch();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace mcsim
