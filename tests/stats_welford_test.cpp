#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcsim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, CvIsStddevOverMean) {
  RunningStats s;
  for (double x : {1.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(RunningStats, TracksMinMax) {
  RunningStats s;
  for (double x : {3.0, -1.0, 7.0, 0.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, SumMatches) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.add(42.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, small variance.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-3);
}

}  // namespace
}  // namespace mcsim
