// Integration tests asserting the paper's qualitative findings at reduced
// scale (full-scale numbers come from the bench harnesses; these runs are
// sized to keep ctest fast while the orderings remain statistically solid).
#include <gtest/gtest.h>

#include <limits>

#include "core/saturation.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

PaperScenario scenario_for(PolicyKind policy, std::uint32_t limit, bool balanced = true,
                           bool das64 = false) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = limit;
  scenario.balanced_queues = balanced;
  scenario.limit_total_size_64 = das64;
  return scenario;
}

double max_util(PolicyKind policy, std::uint32_t limit, bool balanced = true,
                bool das64 = false, std::uint64_t jobs = 12000) {
  SweepConfig config;
  config.target_utilizations = SweepConfig::grid(0.30, 0.80, 0.05);
  config.jobs_per_point = jobs;
  config.seed = 42;
  return run_sweep(scenario_for(policy, limit, balanced, das64), config)
      .max_stable_utilization();
}

double response_at(PolicyKind policy, std::uint32_t limit, double rho, bool balanced = true,
                   bool das64 = false, std::uint64_t jobs = 12000) {
  const auto result =
      run_simulation(make_paper_config(scenario_for(policy, limit, balanced, das64), rho,
                                       jobs, /*seed=*/42));
  return result.unstable ? std::numeric_limits<double>::infinity()
                         : result.mean_response();
}

// Sect. 3.1.1: with DAS-s-128 the performance is poor for ALL policies —
// even total requests saturate well below 1.
TEST(PaperShape, AllPoliciesSaturateWellBelowOne) {
  for (PolicyKind policy :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    EXPECT_LT(max_util(policy, 16), 0.78) << policy_name(policy);
  }
}

// Sect. 3.1.1: LS is the best multicluster policy at limit 16; LP is worst.
TEST(PaperShape, LsBeatsGsBeatsLpAtLimit16) {
  const double ls = max_util(PolicyKind::kLS, 16);
  const double gs = max_util(PolicyKind::kGS, 16);
  const double lp = max_util(PolicyKind::kLP, 16);
  EXPECT_GE(ls, gs);
  EXPECT_GE(gs, lp);
  EXPECT_GT(ls, lp);  // strictly better end to end
}

// Sect. 3.1.1: at limit 16, LS's maximal gross utilization is in SC's
// ballpark ("in some cases LS even comes close to using FCFS for total
// requests in a single cluster"). The paper has LS a whisker above SC; with
// our reconstructed log the whisker lands a grid step below — see
// EXPERIMENTS.md. The invariant that survives reconstruction noise is that
// LS is within a few percent of SC while GS/LP trail clearly.
TEST(PaperShape, LsGrossUtilizationCloseToScAtLimit16) {
  const double ls = max_util(PolicyKind::kLS, 16, true, false, 24000);
  const double sc = max_util(PolicyKind::kSC, 16, true, false, 24000);
  EXPECT_GE(ls, 0.9 * sc);
  EXPECT_GT(ls, max_util(PolicyKind::kLP, 16));
}

// Sect. 3.1.2: unbalancing the local queues hurts LS.
TEST(PaperShape, UnbalanceHurtsLs) {
  const double balanced = response_at(PolicyKind::kLS, 32, 0.45, true);
  const double unbalanced = response_at(PolicyKind::kLS, 32, 0.45, false);
  EXPECT_GT(unbalanced, balanced);
}

// Sect. 3.1.2: LP barely notices the unbalance (all global jobs go to one
// queue anyway). Allow generous slack; it must at least not blow up the way
// LS does.
TEST(PaperShape, UnbalanceBarelyAffectsLp) {
  const double balanced = response_at(PolicyKind::kLP, 16, 0.35, true);
  const double unbalanced = response_at(PolicyKind::kLP, 16, 0.35, false);
  EXPECT_LT(unbalanced, balanced * 1.5);
}

// Sect. 3.2 / Fig. 5: limiting the total job size to 64 improves
// performance, most dramatically for SC.
TEST(PaperShape, DasS64ImprovesEveryPolicy) {
  for (PolicyKind policy : {PolicyKind::kSC, PolicyKind::kLS}) {
    EXPECT_GT(max_util(policy, 16, true, /*das64=*/true),
              max_util(policy, 16, true, /*das64=*/false))
        << policy_name(policy);
  }
}

// Sect. 3.3: limit 24 is the worst component-size limit for every policy.
TEST(PaperShape, Limit24IsWorstForGs) {
  const double u16 = max_util(PolicyKind::kGS, 16);
  const double u24 = max_util(PolicyKind::kGS, 24);
  const double u32 = max_util(PolicyKind::kGS, 32);
  EXPECT_LT(u24, u16);
  EXPECT_LT(u24, u32);
}

TEST(PaperShape, Limit24IsWorstForLs) {
  const double u16 = max_util(PolicyKind::kLS, 16);
  const double u24 = max_util(PolicyKind::kLS, 24);
  EXPECT_LT(u24, u16);
}

// Sect. 3.1.3 / Fig. 4: near LP saturation the global queue's response time
// dwarfs the local queues'.
TEST(PaperShape, LpGlobalQueueIsTheBottleneck) {
  const auto scenario = scenario_for(PolicyKind::kLP, 16);
  // Drive LP close to (but under) its saturation point.
  const auto result =
      run_simulation(make_paper_config(scenario, 0.42, 15000, /*seed=*/42));
  ASSERT_FALSE(result.unstable);
  ASSERT_GT(result.response_global.count(), 0u);
  ASSERT_GT(result.response_local.count(), 0u);
  EXPECT_GT(result.response_global.mean(), 2.0 * result.response_local.mean());
}

// Sect. 4: the measured gross/net utilization gap matches the closed form,
// and shrinks as the component-size limit grows.
TEST(PaperShape, GrossNetGapShrinksWithLimit) {
  const double r16 = gross_net_ratio(das_s_128(), 16, 4, 1.25);
  const double r32 = gross_net_ratio(das_s_128(), 32, 4, 1.25);
  EXPECT_GT(r16, r32);
  const auto result =
      run_simulation(make_paper_config(scenario_for(PolicyKind::kGS, 16), 0.4, 15000, 7));
  EXPECT_NEAR(result.offered_gross_utilization / result.offered_net_utilization, r16, 0.02);
}

}  // namespace
}  // namespace mcsim
