#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/queueing.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(Process, DelayAdvancesSimulatedTime) {
  Simulator sim;
  std::vector<double> times;
  auto body = [](Simulator& s, std::vector<double>& out) -> Process {
    out.push_back(s.now());
    co_await delay(s, 2.0);
    out.push_back(s.now());
    co_await delay(s, 3.5);
    out.push_back(s.now());
  };
  body(sim, times);
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 5.5);
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  bool done = false;
  auto body = [](Simulator& s, bool& flag) -> Process {
    co_await delay(s, 0.0);
    flag = true;
  };
  body(sim, done);
  EXPECT_TRUE(done);  // completed synchronously
}

TEST(Process, InterleavesMultipleProcesses) {
  Simulator sim;
  std::vector<int> order;
  auto body = [](Simulator& s, std::vector<int>& out, int id, double step) -> Process {
    for (int i = 0; i < 2; ++i) {
      co_await delay(s, step);
      out.push_back(id);
    }
  };
  body(sim, order, 1, 1.0);  // resumes at 1, 2
  body(sim, order, 2, 1.5);  // resumes at 1.5, 3
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Resource, FastPathAcquiresImmediately) {
  Simulator sim;
  Resource cpu(sim, 4);
  bool acquired = false;
  auto body = [](Resource& r, bool& flag) -> Process {
    co_await r.acquire(3);
    flag = true;
  };
  body(cpu, acquired);
  EXPECT_TRUE(acquired);
  EXPECT_EQ(cpu.available(), 1u);
}

TEST(Resource, BlocksUntilRelease) {
  Simulator sim;
  Resource cpu(sim, 1);
  std::vector<int> order;
  auto worker = [](Simulator& s, Resource& r, std::vector<int>& out, int id,
                   double hold) -> Process {
    co_await r.acquire();
    out.push_back(id);
    co_await delay(s, hold);
    r.release();
  };
  worker(sim, cpu, order, 1, 5.0);
  worker(sim, cpu, order, 2, 1.0);
  EXPECT_EQ(order, (std::vector<int>{1}));  // 2 is waiting
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.available(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 6.0);  // 5 (held by 1) + 1 (held by 2)
}

TEST(Resource, FifoNoBarging) {
  // A large request at the head must block later small ones even when the
  // small ones would fit (matches the paper's FCFS queues).
  Simulator sim;
  Resource cpu(sim, 4);
  std::vector<int> order;
  auto worker = [](Simulator& s, Resource& r, std::vector<int>& out, int id,
                   std::uint32_t units, double hold) -> Process {
    co_await r.acquire(units);
    out.push_back(id);
    co_await delay(s, hold);
    r.release(units);
  };
  worker(sim, cpu, order, 1, 3, 10.0);  // holds 3 of 4
  worker(sim, cpu, order, 2, 4, 1.0);   // head waiter, needs all 4
  worker(sim, cpu, order, 3, 1, 1.0);   // would fit now, must wait behind 2
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(cpu.waiters(), 2u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Resource, ReleaseWakesMultipleWaiters) {
  Simulator sim;
  Resource cpu(sim, 4);
  std::vector<int> order;
  auto worker = [](Simulator& s, Resource& r, std::vector<int>& out, int id,
                   std::uint32_t units, double hold) -> Process {
    co_await r.acquire(units);
    out.push_back(id);
    co_await delay(s, hold);
    r.release(units);
  };
  worker(sim, cpu, order, 1, 4, 2.0);
  worker(sim, cpu, order, 2, 2, 1.0);
  worker(sim, cpu, order, 3, 2, 1.0);
  sim.run();
  // Releasing all 4 units lets both 2-unit waiters start together.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Resource, OverReleaseThrows) {
  Simulator sim;
  Resource cpu(sim, 2);
  EXPECT_THROW(cpu.release(1), std::invalid_argument);
}

TEST(Resource, OversizedAcquireThrows) {
  Simulator sim;
  Resource cpu(sim, 2);
  EXPECT_THROW(cpu.acquire(3), std::invalid_argument);
}

TEST(Resource, ZeroCapacityThrows) {
  Simulator sim;
  EXPECT_THROW(Resource(sim, 0), std::invalid_argument);
}

// The CSIM-fidelity check: an M/M/2 queue written in the process style must
// reproduce the Erlang-C mean response time.
TEST(ProcessModel, MM2MatchesErlangC) {
  Simulator sim;
  Resource servers(sim, 2);
  Rng rng(321);
  const double lambda = 1.2, mu = 1.0;
  RunningStats responses;
  constexpr int kJobs = 30000;

  auto customer = [](Simulator& s, Resource& r, Rng& random, RunningStats& stats,
                     double mu_rate) -> Process {
    const double arrived = s.now();
    co_await r.acquire();
    co_await delay(s, random.exponential_mean(1.0 / mu_rate));
    r.release();
    stats.add(s.now() - arrived);
  };
  auto source = [&customer](Simulator& s, Resource& r, Rng& random, RunningStats& stats,
                            double rate, double mu_rate, int n) -> Process {
    for (int i = 0; i < n; ++i) {
      co_await delay(s, random.exponential_mean(1.0 / rate));
      customer(s, r, random, stats, mu_rate);
    }
  };
  source(sim, servers, rng, responses, lambda, mu, kJobs);
  sim.run();

  ASSERT_EQ(responses.count(), static_cast<std::uint64_t>(kJobs));
  const double expected = queueing::mmc_mean_response(2, lambda, mu);
  EXPECT_NEAR(responses.mean(), expected, 0.12 * expected);
}

}  // namespace
}  // namespace mcsim
