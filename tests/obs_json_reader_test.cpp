// The JSON reader: writer -> reader round trips (bit-exact doubles, escape
// handling, member order) and loud rejection of malformed documents.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/json_reader.hpp"

namespace mcsim::obs {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_uint(), 42u);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(parse_json("\"hello\"").as_string(), "hello");
}

TEST(JsonReader, ParsesNestedStructure) {
  const auto doc = parse_json(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(0).as_uint(), 1u);
  EXPECT_TRUE(doc.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("x"));
  EXPECT_EQ(doc.find("x"), nullptr);
}

TEST(JsonReader, PreservesMemberOrder) {
  const auto doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonReader, DoublesRoundTripBitExactly) {
  // The reproducibility contract: whatever json_double prints, as_double
  // must read back to the identical bits.
  for (const double value : {1.0 / 3.0, 6.0221408e23, 1e-300, -0.1,
                             123456789.123456789, 5e-324}) {
    const auto parsed = parse_json(json_double(value));
    EXPECT_EQ(parsed.as_double(), value) << json_double(value);
  }
}

TEST(JsonReader, LargeSeedsRoundTripExactly) {
  // Seeds are 64-bit; beyond 2^53 a double would silently round.
  const std::uint64_t seed = 0xFFFFFFFFFFFFFFFFull;
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("seed").value(seed);
  json.end_object();
  EXPECT_EQ(parse_json(out.str()).at("seed").as_uint(), seed);
}

TEST(JsonReader, WriterEscapesRoundTrip) {
  const std::string nasty = "quote \" backslash \\ newline \n tab \t bell \x07";
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("s").value(nasty);
  json.end_object();
  EXPECT_EQ(parse_json(out.str()).at("s").as_string(), nasty);
}

TEST(JsonReader, DecodesUnicodeEscapes) {
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\u00e9")").as_string(), "\xC3\xA9");          // é
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xE2\x82\xAC");      // €
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(JsonReader, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\": 1,}", "nul", "01x", "1.2.3",
        "\"unterminated", "{\"a\": 1} trailing", "\"\\q\"", "\"\\ud800\"", "-"}) {
    EXPECT_THROW(parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonReader, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
}

TEST(JsonReader, KindMismatchesThrow) {
  const auto doc = parse_json(R"({"n": 1.5, "s": "x"})");
  EXPECT_THROW(doc.at("n").as_string(), std::invalid_argument);
  EXPECT_THROW(doc.at("s").as_double(), std::invalid_argument);
  EXPECT_THROW(doc.at("n").as_uint(), std::invalid_argument);  // not integral
  EXPECT_THROW(doc.at(0), std::invalid_argument);              // object, not array
  EXPECT_THROW(parse_json("-3").as_uint(), std::invalid_argument);
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
}

TEST(JsonReader, StreamAndStringAgree) {
  const std::string text = R"({"k": [1, 2.5, "v"]})";
  std::istringstream in(text);
  const auto from_stream = parse_json(in);
  EXPECT_EQ(from_stream.at("k").at(1).as_double(),
            parse_json(text).at("k").at(1).as_double());
}

TEST(JsonReader, MissingFileThrows) {
  EXPECT_THROW(parse_json_file("/nonexistent/path.json"), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::obs
