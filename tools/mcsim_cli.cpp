// mcsim — the unified command-line front end to the library.
//
// Subcommands (first positional argument):
//   run          execute a scenario file (docs/SCENARIOS.md)
//   rerun        replay a run bit-exactly from its run manifest
//   verify       check every scenario against its golden record (docs/GOLDEN.md)
//   point        one simulation at a target utilization, full metrics
//   replay       drive the schedulers from a recorded SWF trace
//   sweep        a response-vs-utilization curve for one scenario
//   saturation   maximal utilization by constant backlog
//   replications independent-replication CI for one load point
//   serve        warm-cache experiment daemon on a Unix socket (docs/SERVING.md)
//   submit       run a scenario on a running serve daemon
//   trace-gen    generate a synthetic DAS1 log (SWF)
//   trace-stats  characterise an SWF trace
//
// Exit codes (regression-tested in tests/util_cli_test.cpp): 0 success,
// 1 runtime failure (a load, run, or verification failed), 2 usage error
// (unknown command/option, missing positional, malformed flag value).
//
// Examples:
//   mcsim run data/scenarios/fig3_gs_limit16.json --metrics-out=run.json
//   mcsim rerun run.json
//   mcsim verify data/golden                  # the regression gate CI runs
//   mcsim verify data/golden --update         # re-pin after a reviewed change
//   mcsim point --policy=LS --utilization=0.55 --limit=16
//   mcsim point --policy=GS --trace-out=run.swf --metrics-out=run.json
//   mcsim replay run.swf --policy=GS --verify-against=run.json
//   mcsim replay das1.swf --policy=LS --scale=0.5   # double the offered load
//   mcsim sweep --policy=SC --from=0.3 --to=0.8 --step=0.05 --gnuplot=out/
//   mcsim sweep --policy=LS --jobs=8          # 8 parallel runs, same output
//   mcsim saturation --policy=GS --limit=24
//   mcsim trace-gen --sim-jobs=30000 --out=das1.swf --sessions
//   mcsim trace-stats das1.swf
//
// Every simulating command is a thin translator onto exp::ScenarioSpec —
// the legacy flag commands build a spec from their flags, `run` loads one
// from a file, and `rerun` extracts the one embedded in a manifest — and
// all of them execute through the same spec executors below, so the same
// experiment is bit-identical no matter how it was described. Pass
// --emit-spec=FILE to a legacy command to write its flags as a scenario
// file (and exit) instead of simulating.
//
// sweep and replications fan their independent runs out over --jobs worker
// threads (default: all hardware threads); results are bit-identical to a
// serial run for every --jobs value.
//
// point (and run in point mode) can export the run through the
// observability layer (docs/TRACING.md): --trace-out writes the realised
// schedule as an SWF trace, --metrics-out writes the JSON run manifest
// (provenance, config, results, collected metrics, and the scenario —
// which is what `rerun` replays), --events-out dumps the most recent
// lifecycle events in the binary ring format.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/saturation.hpp"
#include "exp/corpus.hpp"
#include "exp/gnuplot.hpp"
#include "exp/golden.hpp"
#include "exp/manifest.hpp"
#include "exp/replications.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_spec.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "obs/ring_recorder.hpp"
#include "obs/swf_builder.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic_log.hpp"
#include "trace/timeline.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

namespace {

using namespace mcsim;

/// Errors raised while interpreting command-line flag values (bad enum
/// names, malformed numbers already covered by CliParser) are usage errors
/// — exit code 2 — not runtime failures. The library throws plain
/// std::invalid_argument for both kinds; context decides: inside this
/// wrapper the input came from argv.
template <typename Fn>
auto as_usage(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const CliUsageError&) {
    throw;
  } catch (const std::invalid_argument& error) {
    throw CliUsageError(error.what());
  }
}

void add_scenario_options(CliParser& parser) {
  parser.add_option("policy", "LS", "GS, LS, LP or SC");
  parser.add_option("limit", "16", "job-component-size limit (16, 24, 32, ...)");
  parser.add_option("extension", "1.25", "wide-area service-time extension factor");
  parser.add_option("placement", "WF", "component placement rule: WF, FF, BF or LA");
  parser.add_option("backfill", "none",
                    "single-queue backfilling: none, aggressive, easy, conservative");
  parser.add_option("discipline", "fcfs",
                    "queue order: fcfs, sjf, ljf, smallest-first, largest-first");
  parser.add_option("queue-discipline", "",
                    "synonym for --discipline (takes precedence when both given)");
  parser.add_option("queue", "",
                    "pipeline override: queue structure (single, per-cluster, "
                    "local-global)");
  parser.add_option("coallocation", "",
                    "pipeline override: co-allocation rule (co, no-co, limit-<L>)");
  parser.add_option("seed", "1", "master random seed");
  parser.add_option("engine", "serial",
                    "event core: serial (the canonical reference) or parallel "
                    "(per-cluster LPs, bit-identical results; docs/PARALLEL.md)");
  parser.add_option("emit-spec", "", "write these flags as a scenario file and exit");
  parser.add_flag("unbalanced", "one local queue gets 40% of local submissions");
  parser.add_flag("das64", "cap total job sizes at 64 (DAS-s-64)");
}

/// The flag → spec translation shared by every legacy command.
exp::ScenarioSpec spec_from(const CliParser& parser) {
  exp::ScenarioSpec spec;
  spec.policy = parse_policy_kind(parser.get("policy"));
  spec.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  spec.extension_factor = parser.get_double("extension");
  spec.placement = parse_placement_rule(parser.get("placement"));
  spec.backfill = parse_backfill_mode(parser.get("backfill"));
  spec.discipline = parse_queue_discipline(parser.get("discipline"));
  if (!parser.get("queue-discipline").empty()) {
    spec.discipline = parse_queue_discipline(parser.get("queue-discipline"));
  }
  if (!parser.get("queue").empty()) {
    spec.queue_structure = parse_queue_structure(parser.get("queue"));
  }
  if (!parser.get("coallocation").empty()) {
    spec.coallocation = parse_coallocation_rule(parser.get("coallocation"));
  }
  spec.balanced_queues = !parser.get_flag("unbalanced");
  spec.size_model = parser.get_flag("das64") ? "das-s-64" : "das-s-128";
  spec.seed = parser.get_uint("seed");
  spec.engine = parse_engine_kind(parser.get("engine"));
  return spec;
}

/// Handle --emit-spec: write the spec as a scenario file instead of
/// simulating. Returns true when the command should exit (status in *code).
bool emit_spec_requested(const CliParser& parser, const exp::ScenarioSpec& spec,
                         int* code) {
  const std::string path = parser.get("emit-spec");
  if (path.empty()) return false;
  exp::validate(spec);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mcsim: cannot open " << path << '\n';
    *code = 1;
    return true;
  }
  exp::write_scenario_file(out, spec);
  std::cout << "scenario -> " << path << '\n';
  *code = 0;
  return true;
}

// argv here is the shifted subcommand view (argv[0] is the subcommand).
std::string join_command_line(int argc, const char* const* argv) {
  std::string joined = "mcsim";
  for (int i = 0; i < argc; ++i) {
    joined += ' ';
    joined += argv[i];
  }
  return joined;
}

void add_point_output_options(CliParser& parser) {
  parser.add_option("trace-out", "", "write the realised schedule as an SWF trace");
  parser.add_option("metrics-out", "", "write the JSON run manifest (config, metrics)");
  parser.add_option("events-out", "", "dump recent lifecycle events (binary ring)");
  parser.add_option("ring", "65536", "event ring capacity for --events-out");
}

/// Run one load point from a spec: simulate, export (trace / manifest /
/// events as requested) and print the summary table. The spec is embedded
/// in the manifest, so any manifest written here can be replayed with
/// `mcsim rerun`. `result_out`, when given, receives the run's result
/// (used by `replay --verify-against`).
int execute_point(const exp::ScenarioSpec& spec, const CliParser& parser,
                  const std::string& command_line,
                  SimulationResult* result_out = nullptr) {
  const SimulationConfig config = exp::to_simulation_config(spec);

  const std::string trace_out = parser.get("trace-out");
  const std::string metrics_out = parser.get("metrics-out");
  const std::string events_out = parser.get("events-out");

  MulticlusterSimulation simulation(config);
  obs::RingRecorder recorder(parser.get_uint("ring"));
  obs::SwfTraceBuilder builder;
  obs::MetricsRegistry metrics;
  if (!trace_out.empty()) {
    recorder.add_emitter([&builder](const obs::TraceEvent& event) { builder.record(event); });
  }
  if (!trace_out.empty() || !events_out.empty()) simulation.set_trace_sink(&recorder);
  if (!metrics_out.empty()) simulation.set_metrics(&metrics);

  const auto result = simulation.run();

  if (!trace_out.empty()) {
    // Records stay in finish order: that is the order the engine folded
    // each response time into its statistics, so a consumer re-reading the
    // file reproduces them bit-exactly (docs/TRACING.md).
    SwfTrace trace = builder.trace();
    trace.header_comments = {
        "mcsim realised schedule (" + spec.label() + ")",
        "Version: " + std::string(git_describe()),
        "Command: " + command_line,
        "Records are in job finish order; wait (field 4) and run (field 5)",
        "reconstruct the engine's response times exactly.",
    };
    write_swf_file(trace_out, trace);
    std::cout << "trace: " << trace.records.size() << " records -> " << trace_out << '\n';
  }
  if (!events_out.empty()) {
    std::ofstream out(events_out, std::ios::binary);
    if (!out) {
      std::cerr << "mcsim: cannot open " << events_out << '\n';
      return 1;
    }
    recorder.write_binary(out);
    std::cout << "events: " << recorder.size() << " of " << recorder.total_recorded()
              << " recorded (" << recorder.dropped() << " dropped) -> " << events_out
              << '\n';
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "mcsim: cannot open " << metrics_out << '\n';
      return 1;
    }
    ManifestInfo info;
    info.command_line = command_line;
    info.trace_path = trace_out;
    info.trace_records = builder.trace().records.size();
    info.events_recorded = recorder.total_recorded();
    info.events_dropped = recorder.dropped();
    info.scenario = &spec;
    write_run_manifest(out, config, result, &metrics, info);
    std::cout << "manifest -> " << metrics_out << '\n';
  }

  TextTable table({"metric", "value"});
  table.add_row({"scenario", spec.label()});
  table.add_row({"status", result.unstable ? "UNSTABLE (beyond saturation)" : "stable"});
  table.add_row({"completed jobs", std::to_string(result.completed_jobs)});
  table.add_row({"mean response (s)", format_double(result.mean_response(), 1)});
  table.add_row({"ci95 halfwidth (s)", format_double(result.response_ci.halfwidth, 1)});
  table.add_row({"p95 response (s)", format_double(result.response_p95, 1)});
  table.add_row({"mean wait (s)", format_double(result.wait_all.mean(), 1)});
  table.add_row({"mean slowdown", format_double(result.slowdown_all.mean(), 2)});
  table.add_row({"mean jobs waiting", format_double(result.mean_queue_length, 2)});
  table.add_row({"offered gross util", format_util(result.offered_gross_utilization)});
  table.add_row({"offered net util", format_util(result.offered_net_utilization)});
  table.add_row({"busy fraction", format_util(result.busy_fraction)});
  if (result.response_local.count() > 0) {
    table.add_row({"local-queue response (s)", format_double(result.response_local.mean(), 1)});
  }
  if (result.response_global.count() > 0) {
    table.add_row(
        {"global-queue response (s)", format_double(result.response_global.mean(), 1)});
  }
  std::cout << table.render();
  if (result_out != nullptr) *result_out = result;
  return 0;
}

int execute_sweep(const exp::ScenarioSpec& spec, const std::string& gnuplot_dir) {
  const auto series = run_sweep(spec);
  print_panel(std::cout, "sweep: " + spec.label(), {series});
  print_ascii_plot(std::cout, {series});
  if (!gnuplot_dir.empty()) {
    const auto files = write_gnuplot_panel(gnuplot_dir, "mcsim_sweep", spec.label(),
                                           {series});
    std::cout << "gnuplot script: " << files.script_path << '\n';
  }
  return 0;
}

int execute_saturation(const exp::ScenarioSpec& spec) {
  const auto result = run_saturation(exp::to_saturation_config(spec));
  TextTable table({"metric", "value"});
  table.add_row({"scenario", spec.label()});
  table.add_row({"maximal gross utilization", format_util(result.maximal_gross_utilization)});
  table.add_row({"maximal net utilization", format_util(result.maximal_net_utilization)});
  table.add_row({"completions", std::to_string(result.completions)});
  std::cout << table.render();
  return 0;
}

int execute_replications(const exp::ScenarioSpec& spec) {
  const auto result = run_replications(spec);
  TextTable table({"metric", "value"});
  table.add_row({"scenario", spec.label()});
  table.add_row({"stable replications", std::to_string(result.stable_replications())});
  table.add_row({"unstable replications", std::to_string(result.unstable_replications)});
  table.add_row({"mean response (s)", format_double(result.response_ci.mean, 1)});
  table.add_row({"ci95 halfwidth (s)", format_double(result.response_ci.halfwidth, 1)});
  table.add_row({"mean busy fraction", format_util(result.mean_busy_fraction)});
  std::cout << table.render();
  return 0;
}

int cmd_point(int argc, const char* const* argv) {
  CliParser parser("mcsim point: one simulation at a target gross utilization");
  add_scenario_options(parser);
  parser.add_option("utilization", "0.5", "target gross utilization");
  parser.add_option("sim-jobs", "30000", "simulated jobs");
  parser.add_option("jobs", "1",
                    "worker-thread budget (0 = all cores); a single run "
                    "hands it to --engine=parallel's crew");
  add_point_output_options(parser);
  if (!parser.parse(argc, argv)) return 0;

  exp::ScenarioSpec spec = as_usage([&] { return spec_from(parser); });
  spec.mode = exp::RunMode::kPoint;
  spec.utilization = parser.get_double("utilization");
  spec.sim_jobs = parser.get_uint("sim-jobs");
  spec.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  int code = 0;
  if (emit_spec_requested(parser, spec, &code)) return code;
  return execute_point(spec, parser, join_command_line(argc, argv));
}

// The statistic groups a replay must reproduce bit-exactly from the run
// that exported its trace: everything derived from per-job waits and
// responses. Slowdown and the net-utilization figures are excluded by
// design — the log stores only gross runtimes, so the replay reconstructs
// net service as run/extension, which is not guaranteed to be the
// bit-exact inverse of the original service*extension (docs/TRACING.md).
constexpr const char* kReplayInvariantKeys[] = {
    "completed_jobs", "measured_jobs", "mean_response", "response", "wait",
};

/// `replay --verify-against=<manifest>`: compare the replay's result
/// against the result recorded in the manifest of the original run,
/// bit-exactly, over the replay-invariant statistics. Returns non-zero and
/// names the first diverging leaf on mismatch — the CLI face of the closed
/// round-trip property (tests/trace_replay_roundtrip_test.cpp).
int verify_replay_against(const SimulationResult& result,
                          const std::string& manifest_path) {
  const obs::JsonValue document = obs::parse_json_file(manifest_path);
  const obs::JsonValue* schema =
      document.is_object() ? document.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "mcsim-run-manifest") {
    std::cerr << "mcsim replay: " << manifest_path << " is not a run manifest\n";
    return 1;
  }
  const obs::JsonValue* expected = document.find("result");
  if (expected == nullptr || !expected->is_object()) {
    std::cerr << "mcsim replay: " << manifest_path << " has no result object\n";
    return 1;
  }

  std::ostringstream serialized;
  {
    obs::JsonWriter json(serialized);
    write_result_json(json, result);
  }
  const obs::JsonValue got = obs::parse_json(serialized.str());

  const exp::GoldenOptions bit_exact;  // default mode is kBitExact
  for (const char* key : kReplayInvariantKeys) {
    const obs::JsonValue* want = expected->find(key);
    if (want == nullptr) {
      std::cerr << "mcsim replay: manifest result has no \"" << key << "\"\n";
      return 1;
    }
    const obs::JsonValue* have = got.find(key);
    if (have == nullptr) {
      std::cerr << "mcsim replay: internal error: replay result has no \"" << key
                << "\"\n";
      return 1;
    }
    const exp::CompareOutcome outcome =
        exp::compare_observations(*want, *have, bit_exact);
    if (!outcome.match) {
      std::cerr << "mcsim replay: diverges from " << manifest_path << " at result."
                << key << (outcome.first.path.empty() ? "" : ".")
                << outcome.first.describe() << '\n';
      return 1;
    }
  }
  std::cout << "replay matches " << manifest_path << ": "
            << std::size(kReplayInvariantKeys)
            << " wait/response statistic groups bit-exact\n";
  return 0;
}

/// `replay --corpus=<dir>`: stream every log in the directory, each on a
/// machine sized from its own header and scaled to the same target
/// utilization; optionally check or regenerate the sealed per-log summary
/// goldens (docs/WORKLOADS.md).
int execute_corpus(const exp::ScenarioSpec& base, const CliParser& parser) {
  exp::CorpusOptions options;
  options.utilization = parser.get_double("utilization");
  if (!parser.get("lookahead").empty()) {
    options.lookahead = static_cast<std::uint32_t>(parser.get_uint("lookahead"));
  }
  options.whole_file = parser.get_flag("whole-file");
  options.golden_dir = parser.get("goldens");
  if (parser.get_flag("update-goldens")) {
    options.golden_mode = exp::CorpusGoldenMode::kUpdate;
  } else if (parser.get_flag("check-goldens")) {
    options.golden_mode = exp::CorpusGoldenMode::kCheck;
  }

  const exp::CorpusReport report =
      exp::run_corpus(base, parser.get("corpus"), options);

  TextTable table({"log", "jobs", "machine", "scale", "status", "detail"});
  std::size_t passed = 0;
  for (const exp::CorpusLogVerdict& verdict : report.verdicts) {
    table.add_row({verdict.log_file, std::to_string(verdict.usable_records),
                   std::to_string(verdict.machine_processors),
                   format_double(verdict.arrival_scale, 4),
                   exp::verify_status_name(verdict.status), verdict.detail});
    if (verdict.status == exp::VerifyStatus::kPass ||
        verdict.status == exp::VerifyStatus::kUpdated) {
      ++passed;
    }
  }
  std::cout << table.render();
  std::cout << "corpus: " << passed << '/' << report.verdicts.size()
            << " logs at target utilization "
            << format_util(options.utilization) << '\n';
  if (!report.ok()) {
    std::cerr << "mcsim replay: FAILED — " << (report.verdicts.size() - passed)
              << " log(s) diverge, errored, or lack summaries\n";
    return 1;
  }
  return 0;
}

int cmd_replay(int argc, const char* const* argv) {
  CliParser parser("mcsim replay: drive the schedulers from a recorded SWF trace");
  add_scenario_options(parser);
  parser.add_option("scale", "1.0",
                    "multiply every submit time (<1 compresses the trace and "
                    "raises the offered load)");
  parser.add_option("verify-against", "",
                    "manifest of the run that exported this trace: compare "
                    "wait/response statistics bit-exactly, non-zero exit on drift");
  parser.add_option("lookahead", "",
                    "streaming reader: bounded re-sort window in records "
                    "(default 4096; raise for heavily scrambled logs)");
  parser.add_flag("whole-file",
                  "load the whole log into memory instead of streaming it "
                  "(equivalence/memory baseline; results are identical)");
  parser.add_option("corpus", "",
                    "replay every .swf under this directory instead of one "
                    "log (per-log machine from the SWF header)");
  parser.add_option("utilization", "0.7",
                    "corpus mode: per-log target gross utilization");
  parser.add_option("goldens", "data/golden/corpus",
                    "corpus mode: directory of sealed per-log summaries");
  parser.add_flag("check-goldens",
                  "corpus mode: compare each log against its sealed summary, "
                  "non-zero exit on drift");
  parser.add_flag("update-goldens",
                  "corpus mode: regenerate the sealed per-log summaries");
  parser.add_option("jobs", "1",
                    "worker-thread budget (0 = all cores); a single replay "
                    "hands it to --engine=parallel's crew");
  add_point_output_options(parser);
  if (!parser.parse(argc, argv)) return 0;

  if (!parser.get("corpus").empty()) {
    if (!parser.positional().empty()) {
      std::cerr << "mcsim replay: --corpus replays a directory; drop the "
                   "positional trace argument\n";
      return kExitUsage;
    }
    exp::ScenarioSpec base = as_usage([&] { return spec_from(parser); });
    base.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
    return execute_corpus(base, parser);
  }
  if (parser.positional().empty()) {
    std::cerr << "usage: mcsim replay <trace.swf> [options]\n"
                 "       mcsim replay --corpus=<dir> [options]\n";
    return kExitUsage;
  }

  exp::ScenarioSpec spec = as_usage([&] { return spec_from(parser); });
  spec.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  spec.mode = exp::RunMode::kPoint;
  spec.trace_path = parser.positional().front();
  spec.trace_scale = parser.get_double("scale");
  if (!parser.get("lookahead").empty()) {
    spec.trace_lookahead = static_cast<std::uint32_t>(parser.get_uint("lookahead"));
  }
  spec.trace_whole_file = parser.get_flag("whole-file");
  int code = 0;
  if (emit_spec_requested(parser, spec, &code)) return code;
  SimulationResult result;
  code = execute_point(spec, parser, join_command_line(argc, argv), &result);
  if (code != 0) return code;
  const std::string against = parser.get("verify-against");
  if (!against.empty()) return verify_replay_against(result, against);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  CliParser parser("mcsim sweep: response-vs-utilization curve");
  add_scenario_options(parser);
  parser.add_option("from", "0.30", "first target utilization");
  parser.add_option("to", "0.80", "last target utilization");
  parser.add_option("step", "0.05", "grid step");
  parser.add_option("sim-jobs", "20000", "jobs per sweep point");
  parser.add_option("jobs", std::to_string(exp::Runner::default_jobs()),
                    "parallel sweep points (worker threads)");
  parser.add_option("gnuplot", "", "write .dat/.gp into this directory");
  if (!parser.parse(argc, argv)) return 0;

  exp::ScenarioSpec spec = as_usage([&] { return spec_from(parser); });
  spec.mode = exp::RunMode::kSweep;
  spec.sweep_from = parser.get_double("from");
  spec.sweep_to = parser.get_double("to");
  spec.sweep_step = parser.get_double("step");
  spec.sim_jobs = parser.get_uint("sim-jobs");
  spec.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  int code = 0;
  if (emit_spec_requested(parser, spec, &code)) return code;
  return execute_sweep(spec, parser.get("gnuplot"));
}

int cmd_saturation(int argc, const char* const* argv) {
  CliParser parser("mcsim saturation: maximal utilization by constant backlog");
  add_scenario_options(parser);
  parser.add_option("completions", "40000", "jobs to complete");
  parser.add_option("jobs", "1",
                    "worker-thread budget (0 = all cores); the single "
                    "saturation run hands it to --engine=parallel's crew");
  if (!parser.parse(argc, argv)) return 0;

  exp::ScenarioSpec spec = as_usage([&] { return spec_from(parser); });
  spec.mode = exp::RunMode::kSaturation;
  spec.saturation_completions = parser.get_uint("completions");
  spec.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  int code = 0;
  if (emit_spec_requested(parser, spec, &code)) return code;
  return execute_saturation(spec);
}

int cmd_replications(int argc, const char* const* argv) {
  CliParser parser("mcsim replications: independent-replication CI for one load point");
  add_scenario_options(parser);
  parser.add_option("utilization", "0.5", "target gross utilization");
  parser.add_option("sim-jobs", "20000", "jobs per replication");
  parser.add_option("reps", "10", "number of replications");
  parser.add_option("jobs", std::to_string(exp::Runner::default_jobs()),
                    "parallel replications (worker threads)");
  if (!parser.parse(argc, argv)) return 0;

  exp::ScenarioSpec spec = as_usage([&] { return spec_from(parser); });
  spec.mode = exp::RunMode::kReplications;
  spec.utilization = parser.get_double("utilization");
  spec.sim_jobs = parser.get_uint("sim-jobs");
  spec.replications = static_cast<std::uint32_t>(parser.get_uint("reps"));
  spec.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  int code = 0;
  if (emit_spec_requested(parser, spec, &code)) return code;
  return execute_replications(spec);
}

/// Dispatch a loaded spec to the executor for its run mode; shared by
/// `run` and `rerun`.
int execute_spec(const exp::ScenarioSpec& spec, const CliParser& parser,
                 const std::string& command_line) {
  switch (spec.mode) {
    case exp::RunMode::kPoint:
      return execute_point(spec, parser, command_line);
    case exp::RunMode::kSweep:
      return execute_sweep(spec, parser.get("gnuplot"));
    case exp::RunMode::kSaturation:
      return execute_saturation(spec);
    case exp::RunMode::kReplications:
      return execute_replications(spec);
  }
  return 1;
}

void add_run_options(CliParser& parser) {
  add_point_output_options(parser);
  parser.add_option("gnuplot", "", "sweep mode: write .dat/.gp into this directory");
  parser.add_option("seed", "", "override the scenario's master seed");
  parser.add_option("jobs", "", "override the scenario's worker-thread budget");
  parser.add_option("engine", "",
                    "override the scenario's event core (serial, parallel); "
                    "results are bit-identical either way (docs/PARALLEL.md)");
  parser.add_option("trace-in", "",
                    "replay this SWF trace instead of the scenario's workload");
  parser.add_option("scale", "", "trace replay: override the arrival-time scale");
  parser.add_option("backfill", "",
                    "override the scenario's backfill mode (none, aggressive, "
                    "easy, conservative)");
  parser.add_option("discipline", "",
                    "override the scenario's queue order (fcfs, sjf, ljf, "
                    "smallest-first, largest-first)");
  parser.add_option("queue-discipline", "",
                    "synonym for --discipline (takes precedence when both given)");
}

void apply_run_overrides(const CliParser& parser, exp::ScenarioSpec* spec) {
  if (!parser.get("seed").empty()) spec->seed = parser.get_uint("seed");
  if (!parser.get("jobs").empty()) {
    spec->parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  }
  if (!parser.get("engine").empty()) {
    spec->engine = parse_engine_kind(parser.get("engine"));
  }
  if (!parser.get("trace-in").empty()) spec->trace_path = parser.get("trace-in");
  if (!parser.get("scale").empty()) spec->trace_scale = parser.get_double("scale");
  if (!parser.get("backfill").empty()) {
    spec->backfill = parse_backfill_mode(parser.get("backfill"));
  }
  if (!parser.get("discipline").empty()) {
    spec->discipline = parse_queue_discipline(parser.get("discipline"));
  }
  if (!parser.get("queue-discipline").empty()) {
    spec->discipline = parse_queue_discipline(parser.get("queue-discipline"));
  }
}

int cmd_run(int argc, const char* const* argv) {
  CliParser parser("mcsim run: execute a scenario file (docs/SCENARIOS.md)");
  add_run_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  if (parser.positional().empty()) {
    std::cerr << "usage: mcsim run <scenario.json> [options]\n";
    return kExitUsage;
  }
  exp::ScenarioSpec spec = exp::load_scenario(parser.positional().front());
  as_usage([&] { apply_run_overrides(parser, &spec); });
  return execute_spec(spec, parser, join_command_line(argc, argv));
}

int cmd_rerun(int argc, const char* const* argv) {
  CliParser parser("mcsim rerun: replay a run bit-exactly from its run manifest");
  add_run_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  if (parser.positional().empty()) {
    std::cerr << "usage: mcsim rerun <manifest.json> [options]\n";
    return kExitUsage;
  }
  const std::string path = parser.positional().front();
  const obs::JsonValue document = obs::parse_json_file(path);
  const obs::JsonValue* schema =
      document.is_object() ? document.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "mcsim-run-manifest") {
    std::cerr << "mcsim: " << path
              << " is not a run manifest (use `mcsim run` for scenario files)\n";
    return 1;
  }
  const obs::JsonValue* embedded = document.find("scenario");
  if (embedded == nullptr) {
    std::cerr << "mcsim: " << path
              << " has no embedded scenario (written before scenario support?)\n";
    return 1;
  }
  exp::ScenarioSpec spec = exp::scenario_from_json(*embedded);
  as_usage([&] { apply_run_overrides(parser, &spec); });
  return execute_spec(spec, parser, join_command_line(argc, argv));
}

int cmd_verify(int argc, const char* const* argv) {
  CliParser parser(
      "mcsim verify: run every checked-in scenario and compare against its "
      "golden record (docs/GOLDEN.md)");
  parser.add_option("scenarios", "data/scenarios", "directory of scenario files");
  parser.add_option("mode", "bit-exact", "comparison tier: bit-exact or statistical");
  parser.add_option("rel-tol", "1e-6", "statistical tier: relative tolerance");
  parser.add_option("abs-tol", "1e-9", "statistical tier: absolute tolerance");
  parser.add_option("jobs", std::to_string(exp::Runner::default_jobs()),
                    "parallel scenario runs (worker threads)");
  parser.add_option("engine", "serial",
                    "event core reproducing the observations: serial (the "
                    "reference the goldens were sealed from) or parallel (the "
                    "bit-exactness gate; docs/PARALLEL.md)");
  parser.add_flag("update", "regenerate the goldens from the current build");
  if (!parser.parse(argc, argv)) return 0;

  const std::string golden_dir =
      parser.positional().empty() ? "data/golden" : parser.positional().front();
  exp::VerifyOptions options;
  options.compare.mode =
      as_usage([&] { return exp::parse_compare_mode(parser.get("mode")); });
  options.compare.rel_tol = parser.get_double("rel-tol");
  options.compare.abs_tol = parser.get_double("abs-tol");
  options.parallelism = static_cast<unsigned>(parser.get_uint("jobs"));
  options.update = parser.get_flag("update");
  options.engine = as_usage([&] { return parse_engine_kind(parser.get("engine")); });

  const exp::VerifyReport report =
      exp::verify_goldens(parser.get("scenarios"), golden_dir, options);

  TextTable table({"scenario", "status", "detail"});
  std::size_t passed = 0;
  for (const exp::ScenarioVerdict& verdict : report.verdicts) {
    table.add_row({verdict.scenario_file, exp::verify_status_name(verdict.status),
                   verdict.detail});
    if (verdict.status == exp::VerifyStatus::kPass ||
        verdict.status == exp::VerifyStatus::kUpdated) {
      ++passed;
    }
  }
  std::cout << table.render();
  std::cout << (options.update ? "updated " : "verified ") << passed << '/'
            << report.verdicts.size() << " scenarios ("
            << exp::compare_mode_name(options.compare.mode) << " tier"
            << (options.engine == EngineKind::kParallel ? ", parallel engine" : "")
            << ") against " << golden_dir << '\n';
  if (!report.ok()) {
    std::cerr << "mcsim verify: FAILED — " << (report.verdicts.size() - passed)
              << " scenario(s) diverge from their goldens\n";
    return 1;
  }
  return 0;
}

int cmd_trace_gen(int argc, const char* const* argv) {
  CliParser parser("mcsim trace-gen: synthesise a DAS1-like workload log (SWF)");
  // --sim-jobs, not --jobs: everywhere in the suite --jobs means worker
  // threads and --sim-jobs means workload length (see README, CLI reference).
  parser.add_option("sim-jobs", "30000", "jobs in the log");
  parser.add_option("days", "90", "log span in days");
  parser.add_option("out", "das1_synthetic.swf", "output SWF path");
  parser.add_option("seed", "20031128", "random seed");
  parser.add_flag("sessions", "use the per-user session arrival model");
  if (!parser.parse(argc, argv)) return 0;

  SyntheticLogConfig config;
  config.num_jobs = parser.get_uint("sim-jobs");
  config.duration_seconds = parser.get_double("days") * 86400.0;
  config.seed = parser.get_uint("seed");
  config.user_sessions = parser.get_flag("sessions");
  const auto trace = generate_synthetic_das1_log(config);
  write_swf_file(parser.get("out"), trace);
  std::cout << "wrote " << trace.records.size() << " jobs to " << parser.get("out") << '\n';
  return 0;
}

int cmd_trace_stats(int argc, const char* const* argv) {
  CliParser parser("mcsim trace-stats: characterise an SWF trace");
  parser.add_option("capacity", "128", "machine size for the utilization timeline");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.positional().empty()) {
    std::cerr << "usage: mcsim trace-stats <trace.swf>\n";
    return kExitUsage;
  }
  const auto trace = read_swf_file(parser.positional().front());
  const auto summary = summarize_trace(trace.records);
  TextTable table({"statistic", "value"});
  table.add_row({"jobs", std::to_string(summary.job_count)});
  table.add_row({"users", std::to_string(summary.user_count)});
  table.add_row({"span (days)", format_double(summary.duration / 86400.0, 1)});
  table.add_row({"distinct sizes", std::to_string(summary.distinct_sizes)});
  table.add_row({"mean size", format_double(summary.mean_size, 2)});
  table.add_row({"size cv", format_double(summary.size_cv, 2)});
  table.add_row({"power-of-two fraction", format_util(summary.power_of_two_fraction)});
  table.add_row({"mean service (s)", format_double(summary.mean_service, 1)});
  table.add_row({"service cv", format_double(summary.service_cv, 2)});
  table.add_row({"under 15 min", format_util(summary.fraction_under_15min)});
  std::cout << table.render() << '\n';
  std::cout << render_utilization_timeline(
      trace.records, static_cast<std::uint32_t>(parser.get_uint("capacity")));
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  CliParser parser(
      "mcsim serve: warm-cache experiment daemon on a local Unix socket "
      "(docs/SERVING.md)");
  parser.add_option("socket", "mcsim.sock", "Unix-domain socket path to listen on");
  parser.add_option("jobs", "1", "concurrent served runs (0 = all cores)");
  parser.add_option("cache-mb", "256",
                    "trace-cache byte budget in MiB (0 disables retention)");
  parser.add_option("sandbox", ".",
                    "directory submitted trace paths must stay under "
                    "(out-of-tree paths are rejected, never opened)");
  if (!parser.parse(argc, argv)) return 0;

  serve::ServerConfig config;
  config.socket_path = parser.get("socket");
  config.jobs = static_cast<unsigned>(parser.get_uint("jobs"));
  config.cache_bytes = parser.get_uint("cache-mb") << 20;
  config.sandbox_root = parser.get("sandbox");
  serve::Server server(config);
  // Blocks until a `shutdown` request or SIGTERM/SIGINT drains the queue;
  // a clean drain exits 0.
  return server.serve();
}

int cmd_submit(int argc, const char* const* argv) {
  CliParser parser(
      "mcsim submit: run a scenario on a running `mcsim serve` daemon");
  parser.add_option("socket", "mcsim.sock", "daemon socket path");
  parser.add_option("name", "", "label for the run (default: the spec's label)");
  parser.add_option("out", "",
                    "write the served run manifest here (byte-identical to the "
                    "document the server rendered)");
  parser.add_option("timeout", "600", "seconds to wait for each response");
  parser.add_flag("no-wait", "print the run id and exit without waiting");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.positional().empty()) {
    std::cerr << "usage: mcsim submit <scenario.json> [options]\n";
    return kExitUsage;
  }

  // Read the file raw — no path resolution. A trace path inside the
  // scenario travels verbatim and is resolved by the SERVER against its
  // sandbox root, so the same scenario file means the same thing to every
  // client wherever it runs (docs/SERVING.md, "The sandbox").
  const std::string path = parser.positional().front();
  obs::JsonValue document = obs::parse_json_file(path);
  const obs::JsonValue* spec = &document;
  if (document.is_object() && document.find("schema") != nullptr &&
      document.at("schema").is_string() &&
      document.at("schema").as_string() == "mcsim-run-manifest") {
    spec = document.find("scenario");
    if (spec == nullptr) {
      std::cerr << "mcsim submit: " << path << " has no embedded scenario\n";
      return 1;
    }
  }

  serve::ServeClient client(parser.get("socket"));
  client.set_timeout_ms(static_cast<int>(parser.get_uint("timeout")) * 1000);
  const std::uint64_t id =
      client.submit(serve::compact_json(*spec), parser.get("name"));
  std::cout << "submitted run " << id << '\n';
  if (parser.get_flag("no-wait")) return 0;

  const obs::JsonValue response = client.await_result(id);
  const obs::JsonValue& manifest = response.at("manifest");
  const std::string out_path = parser.get("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "mcsim: cannot open " << out_path << '\n';
      return 1;
    }
    // write_parsed_json reproduces our own serialization byte-for-byte, so
    // this file equals the manifest an offline `mcsim run --metrics-out`
    // writes, up to the wall-clock provenance (docs/SERVING.md).
    obs::JsonWriter json(out);
    exp::write_parsed_json(json, manifest);
    out << '\n';
    std::cout << "manifest -> " << out_path << '\n';
  }
  const obs::JsonValue* result = manifest.find("result");
  const obs::JsonValue* mean =
      result != nullptr ? result->find("mean_response") : nullptr;
  std::cout << "run " << id << " done";
  if (mean != nullptr) std::cout << ": mean response " << mean->number_text() << " s";
  std::cout << '\n';
  return 0;
}

void print_usage() {
  std::cout
      << "mcsim — trace-based multicluster co-allocation simulator (HPDC'03 repro)\n\n"
         "usage: mcsim <command> [options]   (each command supports --help)\n\n"
         "commands:\n"
         "  run           execute a scenario file (docs/SCENARIOS.md)\n"
         "  rerun         replay a run bit-exactly from its run manifest\n"
         "  verify        check every scenario against its golden record\n"
         "  point         one simulation at a target utilization\n"
         "  replay        drive the schedulers from a recorded SWF trace\n"
         "  sweep         response-vs-utilization curve\n"
         "  saturation    maximal utilization (constant backlog)\n"
         "  replications  independent-replication confidence interval\n"
         "  serve         warm-cache experiment daemon (docs/SERVING.md)\n"
         "  submit        run a scenario on a running serve daemon\n"
         "  trace-gen     generate a synthetic DAS1 log (SWF)\n"
         "  trace-stats   characterise an SWF trace\n\n"
         "exit codes: 0 success, 1 runtime failure, 2 usage error\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return kExitUsage;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "run") return cmd_run(sub_argc, sub_argv);
    if (command == "rerun") return cmd_rerun(sub_argc, sub_argv);
    if (command == "verify") return cmd_verify(sub_argc, sub_argv);
    if (command == "point") return cmd_point(sub_argc, sub_argv);
    if (command == "replay") return cmd_replay(sub_argc, sub_argv);
    if (command == "sweep") return cmd_sweep(sub_argc, sub_argv);
    if (command == "saturation") return cmd_saturation(sub_argc, sub_argv);
    if (command == "replications") return cmd_replications(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "submit") return cmd_submit(sub_argc, sub_argv);
    if (command == "trace-gen") return cmd_trace_gen(sub_argc, sub_argv);
    if (command == "trace-stats") return cmd_trace_stats(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
  } catch (const serve::ServeError& error) {
    // A structured server-side refusal: surface the machine-readable code
    // alongside the message. Always a runtime failure for the client.
    std::cerr << "mcsim: server error [" << error.code() << "] " << error.what()
              << '\n';
    return kExitRuntime;
  } catch (const std::exception& error) {
    // MCSIM_REQUIRE messages already carry the "mcsim: " prefix.
    const std::string_view what = error.what();
    std::cerr << (what.starts_with("mcsim: ") ? "" : "mcsim: ") << what << '\n';
    // CliUsageError -> 2 (bad invocation); everything else -> 1 (the run
    // itself failed). Regression-tested in tests/util_cli_test.cpp.
    return cli_exit_code(error);
  }
  std::cerr << "mcsim: unknown command '" << command << "'\n\n";
  print_usage();
  return kExitUsage;
}
