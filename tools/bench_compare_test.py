#!/usr/bin/env python3
"""Tests for the benchmark regression gate (tools/bench_compare.py).

The centrepiece is the negative test: a doctored 20% regression MUST fail
the gate. A gate whose failure path is never exercised protects nothing.

Registered in ctest (tests/CMakeLists.txt) so the gate's own behaviour is
pinned by the same suite that pins the simulator.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(
    os.environ.get("MCSIM_REPO_ROOT", pathlib.Path(__file__).resolve().parent.parent))
BENCH_COMPARE = REPO_ROOT / "tools" / "bench_compare.py"

CALIBRATION = "BM_CalendarCalibration"
GS = "BM_ReplayThroughput/GS"
LS = "BM_ReplayThroughput/LS"
PARALLEL = "BM_ReplayThroughputParallel/GS/real_time"


def gbench_json(rates, num_cpus=None):
    """A minimal google-benchmark JSON document with the given items/sec."""
    benchmarks = [
        {"name": name, "run_type": "iteration", "items_per_second": rate}
        for name, rate in rates.items()
    ]
    # An aggregate row with a wildly wrong rate: load_rates must skip it.
    benchmarks.append({
        "name": GS + "_mean",
        "run_type": "aggregate",
        "items_per_second": 1.0,
    })
    doc = {"benchmarks": benchmarks}
    if num_cpus is not None:
        doc["context"] = {"num_cpus": num_cpus}
    return doc


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self.tmp.name)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return path

    def run_gate(self, *argv):
        return subprocess.run(
            [sys.executable, str(BENCH_COMPARE), *map(str, argv)],
            capture_output=True, text=True)

    def baseline(self, gs_ratio, ls_ratio):
        return self.write("baseline.json", {"ratios": {GS: gs_ratio, LS: ls_ratio}})

    def test_identical_run_passes(self):
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 10e6, GS: 4e6, LS: 3e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("benchmark gate passed", proc.stdout)

    def test_uniformly_slower_machine_passes(self):
        # Everything (calibration included) at 60% speed: the normalized
        # ratios are unchanged, so the gate must not cry wolf.
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 6e6, GS: 2.4e6, LS: 1.8e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_doctored_regression_fails(self):
        # GS at 20% below baseline relative to calibration: must exit 1.
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 10e6, GS: 3.2e6, LS: 3e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("docs/PERFORMANCE.md", proc.stdout)

    def test_regression_within_threshold_passes(self):
        # 5% down is noise, not a gate failure (threshold is 10%).
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 10e6, GS: 3.8e6, LS: 2.85e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_improvement_passes(self):
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 10e6, GS: 6e6, LS: 4.5e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_missing_calibration_is_an_error(self):
        results = self.write("results.json", gbench_json({GS: 4e6, LS: 3e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn(CALIBRATION, proc.stderr + proc.stdout)

    def test_update_writes_baseline_that_then_passes(self):
        results = self.write("results.json",
                             gbench_json({CALIBRATION: 10e6, GS: 4e6, LS: 3e6}))
        baseline = self.dir / "new_baseline.json"
        proc = self.run_gate(results, baseline, "--update")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        written = json.loads(baseline.read_text())
        self.assertAlmostEqual(written["ratios"][GS], 0.4)
        self.assertAlmostEqual(written["ratios"][LS], 0.3)
        proc = self.run_gate(results, baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    # -- the parallel-engine speedup assertion ---------------------------

    def test_speedup_met_on_big_runner_passes(self):
        results = self.write("results.json", gbench_json(
            {CALIBRATION: 10e6, GS: 4e6, LS: 3e6, PARALLEL: 8e6}, num_cpus=8))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("2.00x", proc.stdout)
        self.assertNotIn("SKIPPED", proc.stdout)

    def test_speedup_missed_on_big_runner_fails(self):
        # 1.2x on 8 cores is below the 1.5x floor: must exit 1.
        results = self.write("results.json", gbench_json(
            {CALIBRATION: 10e6, GS: 4e6, LS: 3e6, PARALLEL: 4.8e6}, num_cpus=8))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_speedup_skipped_not_passed_on_small_runner(self):
        # Even a parallel *slowdown* is fine on 1 core — but the skip must
        # be printed, never silent.
        results = self.write("results.json", gbench_json(
            {CALIBRATION: 10e6, GS: 4e6, LS: 3e6, PARALLEL: 2e6}, num_cpus=1))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SKIPPED", proc.stdout)
        self.assertIn("1 cores", proc.stdout)

    def test_speedup_skipped_when_core_count_unknown(self):
        results = self.write("results.json", gbench_json(
            {CALIBRATION: 10e6, GS: 4e6, LS: 3e6, PARALLEL: 2e6}))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SKIPPED", proc.stdout)

    def test_speedup_skipped_when_parallel_row_absent(self):
        # Old result files (no parallel row) still gate the serial ratios.
        results = self.write("results.json", gbench_json(
            {CALIBRATION: 10e6, GS: 4e6, LS: 3e6}, num_cpus=8))
        proc = self.run_gate(results, self.baseline(0.4, 0.3))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SKIPPED", proc.stdout)

    def test_checked_in_baseline_is_well_formed(self):
        doc = json.loads((REPO_ROOT / "bench" / "baseline.json").read_text())
        self.assertEqual(doc["normalized_to"], CALIBRATION)
        for name in (GS, LS):
            self.assertIn(name, doc["ratios"])
            self.assertGreater(doc["ratios"][name], 0.0)


if __name__ == "__main__":
    unittest.main()
