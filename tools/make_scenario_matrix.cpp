// make_scenario_matrix — deterministic generator for the curated pipeline
// scenario matrix (data/scenarios/matrix/, docs/SCHEDULING.md).
//
// The matrix samples the composable-pipeline space the policy aliases do
// not reach: queue structures crossed with disciplines, the three backfill
// variants, the placement rules (including load-aware on a heterogeneous
// layout), and the co-allocation rules on layouts where they are feasible.
// Every entry is a plain scenario file produced by the canonical
// serializer, so `mcsim run` executes it and `mcsim verify
// --scenarios=data/scenarios/matrix data/golden/matrix` seals it.
//
// The table below is code, not input: regenerating the matrix reproduces
// the checked-in files byte-for-byte (validated by
// tests/exp_matrix_corpus_test.cpp), which is what keeps the sealed
// goldens honest.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/scenario_spec.hpp"
#include "policy/pipeline.hpp"
#include "policy/scheduler.hpp"
#include "policy/scheduler_factory.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"

namespace {

using mcsim::BackfillMode;
using mcsim::CoAllocationRule;
using mcsim::PlacementRule;
using mcsim::PolicyKind;
using mcsim::QueueDiscipline;
using mcsim::QueueStructure;
using mcsim::exp::ScenarioSpec;

/// Shared run shape: one modest point run per entry. Small enough that the
/// 24-scenario matrix verifies in seconds, long enough that every policy
/// mechanism (backfill windows, queue reordering, whole-job placement)
/// actually fires.
ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.mode = mcsim::exp::RunMode::kPoint;
  spec.utilization = 0.55;
  spec.sim_jobs = 8000;
  spec.seed = 20030815;
  return spec;
}

/// One named matrix entry: the base spec with a mutation applied.
struct MatrixEntry {
  std::string file_stem;
  ScenarioSpec spec;
};

std::vector<MatrixEntry> build_matrix() {
  std::vector<MatrixEntry> matrix;
  const auto add = [&matrix](const std::string& stem, const std::string& name,
                             auto&& mutate) {
    ScenarioSpec spec = base_spec();
    spec.name = name;
    mutate(spec);
    matrix.push_back({stem, std::move(spec)});
  };

  // -- queue structure x discipline --------------------------------------
  add("matrix_gs_fcfs", "matrix GS fcfs baseline", [](ScenarioSpec& s) {
    s.policy = PolicyKind::kGS;
  });
  add("matrix_gs_sjf", "matrix GS shortest-job-first", [](ScenarioSpec& s) {
    s.policy = PolicyKind::kGS;
    s.discipline = QueueDiscipline::kShortestJobFirst;
  });
  add("matrix_gs_ljf", "matrix GS longest-job-first", [](ScenarioSpec& s) {
    s.policy = PolicyKind::kGS;
    s.discipline = QueueDiscipline::kLongestJobFirst;
  });
  add("matrix_ls_sjf", "matrix LS shortest-job-first local queues",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLS;
        s.discipline = QueueDiscipline::kShortestJobFirst;
      });
  add("matrix_ls_largest", "matrix LS largest-first local queues",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLS;
        s.discipline = QueueDiscipline::kLargestFirst;
      });
  add("matrix_lp_sjf", "matrix LP shortest-job-first local+global",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLP;
        s.discipline = QueueDiscipline::kShortestJobFirst;
      });

  // -- backfill (single-global-queue structures only) --------------------
  add("matrix_gs_bf_aggressive", "matrix GS aggressive backfilling",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.backfill = BackfillMode::kAggressive;
      });
  add("matrix_gs_bf_easy", "matrix GS EASY backfilling", [](ScenarioSpec& s) {
    s.policy = PolicyKind::kGS;
    s.backfill = BackfillMode::kEasy;
  });
  add("matrix_gs_bf_conservative", "matrix GS conservative backfilling",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.backfill = BackfillMode::kConservative;
      });
  add("matrix_sc_bf_conservative",
      "matrix SC conservative backfilling on 1x128", [](ScenarioSpec& s) {
        s.policy = PolicyKind::kSC;
        s.backfill = BackfillMode::kConservative;
      });

  // -- placement ---------------------------------------------------------
  add("matrix_gs_ff", "matrix GS ordered first-fit placement",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.placement = PlacementRule::kFirstFit;
      });
  add("matrix_gs_bfit", "matrix GS best-fit placement", [](ScenarioSpec& s) {
    s.policy = PolicyKind::kGS;
    s.placement = PlacementRule::kBestFit;
  });
  // Load-aware only separates from worst-fit on heterogeneous capacities
  // (idle fraction vs absolute idle), so the LA/WF pair shares a skewed
  // layout with the DAS total of 128 processors. The das-s-64 size model
  // keeps the largest split component at 16 (validate()'s split-feasibility
  // rule: das-s-128 would split 128 into 32+32+32+32, which the
  // 16-processor clusters can never hold), and the lighter load keeps the
  // skewed layout in the stable regime.
  add("matrix_gs_la_hetero", "matrix GS load-aware placement on 64/32/16/16",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.placement = PlacementRule::kLoadAware;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 32, 16, 16};
        s.utilization = 0.40;
      });
  add("matrix_gs_wf_hetero", "matrix GS worst-fit placement on 64/32/16/16",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.placement = PlacementRule::kWorstFit;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 32, 16, 16};
        s.utilization = 0.40;
      });

  // -- co-allocation rules -----------------------------------------------
  // Restricted rules force large jobs whole onto one cluster, so these run
  // on layouts whose biggest cluster holds the maximal total job size
  // (validate() rejects infeasible combinations).
  add("matrix_gs_noco", "matrix GS no co-allocation on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation = CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0};
      });
  add("matrix_ls_noco", "matrix LS no co-allocation on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLS;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation = CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0};
      });
  add("matrix_lp_noco", "matrix LP no co-allocation on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLP;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation = CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0};
      });
  add("matrix_gs_limit1", "matrix GS component limit 1 on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation =
            CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 1};
      });
  add("matrix_gs_limit2", "matrix GS component limit 2 on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation =
            CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 2};
      });

  // -- combined compositions ---------------------------------------------
  add("matrix_gs_sjf_easy", "matrix GS SJF with EASY backfilling",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.discipline = QueueDiscipline::kShortestJobFirst;
        s.backfill = BackfillMode::kEasy;
      });
  add("matrix_gs_la_conservative",
      "matrix GS load-aware with conservative backfilling on 64/32/16/16",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.placement = PlacementRule::kLoadAware;
        s.backfill = BackfillMode::kConservative;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 32, 16, 16};
        s.utilization = 0.40;
      });
  add("matrix_ls_sjf_noco", "matrix LS SJF without co-allocation on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kLS;
        s.discipline = QueueDiscipline::kShortestJobFirst;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation = CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0};
      });
  add("matrix_sc_sjf_aggressive",
      "matrix SC SJF with aggressive backfilling on 1x128",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kSC;
        s.discipline = QueueDiscipline::kShortestJobFirst;
        s.backfill = BackfillMode::kAggressive;
      });
  add("matrix_gs_ff_limit2", "matrix GS first-fit with component limit 2 on 4x64",
      [](ScenarioSpec& s) {
        s.policy = PolicyKind::kGS;
        s.placement = PlacementRule::kFirstFit;
        s.size_model = "das-s-64";
        s.cluster_sizes = {64, 64, 64, 64};
        s.coallocation =
            CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 2};
      });

  return matrix;
}

}  // namespace

int main(int argc, char** argv) {
  mcsim::CliParser parser(
      "make_scenario_matrix: regenerate the curated pipeline scenario matrix "
      "(docs/SCHEDULING.md)");
  parser.add_option("out", "data/scenarios/matrix",
                    "directory the scenario files are written into");
  parser.add_flag("list", "print the matrix entries without writing files");
  if (!parser.parse(argc, argv)) return 0;

  try {
    const std::vector<MatrixEntry> matrix = build_matrix();
    for (const MatrixEntry& entry : matrix) {
      // Fail loudly at generation time, not at verify time.
      mcsim::exp::validate(entry.spec);
    }
    if (parser.get_flag("list")) {
      for (const MatrixEntry& entry : matrix) {
        std::cout << entry.file_stem << ".json\t" << entry.spec.label() << '\n';
      }
      std::cout << matrix.size() << " scenarios\n";
      return 0;
    }

    const std::filesystem::path out_dir = parser.get("out");
    std::filesystem::create_directories(out_dir);
    for (const MatrixEntry& entry : matrix) {
      const std::filesystem::path path = out_dir / (entry.file_stem + ".json");
      std::ofstream out(path);
      MCSIM_REQUIRE(out.good(), "cannot open " + path.string());
      mcsim::exp::write_scenario_file(out, entry.spec);
      MCSIM_REQUIRE(out.good(), "write failed: " + path.string());
    }
    std::cout << "wrote " << matrix.size() << " scenarios to " << out_dir.string()
              << '\n';
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "make_scenario_matrix: " << error.what() << '\n';
    return 1;
  }
}
