#!/usr/bin/env python3
"""Concurrency benchmark for the mcsim experiment daemon (`mcsim serve`).

Boots a daemon, drives it with K concurrent clients each submitting the
same scenario N times over the NDJSON protocol (docs/SERVING.md), and
writes a benchmark report. The interesting numbers are the cold-vs-warm
split (the first submit of a trace pays the parse; the rest hit the warm
cache) and submit->result latency under concurrency.

Advisory by design: the report is uploaded as a CI artifact for trend
inspection, not gated — serve latency on a shared runner is too noisy for
a threshold, unlike the calibration-normalized replay gate
(tools/bench_compare.py).

Usage:
  python3 tools/serve_bench.py --mcsim build/tools/mcsim \\
      --scenario data/scenarios/smoke.json --clients 4 --submits 3 \\
      --out BENCH_serve.json
"""

import argparse
import json
import os
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time


def connect(path, attempts=300, delay=0.05):
    """Connect to the daemon socket, retrying while it boots."""
    last = None
    for _ in range(attempts):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as error:
            last = error
            sock.close()
            time.sleep(delay)
    raise RuntimeError(f"server never came up at {path}: {last}")


class Client:
    """One NDJSON protocol connection: send a request object, read one
    response line."""

    def __init__(self, socket_path):
        self.sock = connect(socket_path)
        self.file = self.sock.makefile("rwb")

    def request(self, obj):
        self.file.write(json.dumps(obj).encode() + b"\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise RuntimeError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(f"server error: {response.get('error')}")
        return response

    def close(self):
        self.file.close()
        self.sock.close()


def run_client(socket_path, spec, submits, latencies, errors, index):
    try:
        client = Client(socket_path)
        for _ in range(submits):
            start = time.perf_counter()
            run_id = client.request({"op": "submit", "spec": spec})["id"]
            response = client.request({"op": "result", "id": run_id, "wait": True})
            latencies[index].append(time.perf_counter() - start)
            assert response["state"] == "done", response
        client.close()
    except Exception as error:  # noqa: BLE001 - report, don't crash the bench
        errors[index] = str(error)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mcsim", default="build/tools/mcsim")
    parser.add_argument("--scenario", default="data/scenarios/smoke.json")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--submits", type=int, default=3,
                        help="submissions per client")
    parser.add_argument("--jobs", type=int, default=2,
                        help="server runner-pool width (--jobs)")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args()

    with open(args.scenario, encoding="utf-8") as handle:
        spec = json.load(handle)

    with tempfile.TemporaryDirectory(prefix="mcsim_serve_bench_") as tmp:
        socket_path = os.path.join(tmp, "bench.sock")
        server = subprocess.Popen(
            [args.mcsim, "serve", f"--socket={socket_path}",
             f"--jobs={args.jobs}", "--sandbox=."],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            latencies = [[] for _ in range(args.clients)]
            errors = [None] * args.clients
            threads = [
                threading.Thread(target=run_client, args=(
                    socket_path, spec, args.submits, latencies, errors, i))
                for i in range(args.clients)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start

            failures = [e for e in errors if e]
            if failures:
                raise RuntimeError("; ".join(failures))

            control = Client(socket_path)
            stats = control.request({"op": "stats"})
            control.request({"op": "shutdown"})
            control.close()
        finally:
            if server.poll() is None:
                server.terminate()
            code = server.wait(timeout=60)
        if code != 0:
            raise RuntimeError(f"server exited {code} after the drain")

    flat = sorted(t for per_client in latencies for t in per_client)
    total = len(flat)
    report = {
        "schema": "mcsim-serve-bench",
        "schema_version": 1,
        "scenario": args.scenario,
        "clients": args.clients,
        "submits_per_client": args.submits,
        "server_jobs": args.jobs,
        "total_runs": total,
        "wall_seconds": wall,
        "runs_per_second": total / wall if wall > 0 else 0.0,
        "latency_seconds": {
            "mean": statistics.fmean(flat),
            "p50": flat[total // 2],
            "min": flat[0],
            "max": flat[-1],
        },
        "server_stats": {"cache": stats["cache"], "runs": stats["runs"]},
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"{total} runs, {args.clients} clients: "
          f"{report['runs_per_second']:.1f} runs/s, "
          f"mean latency {report['latency_seconds']['mean'] * 1e3:.1f} ms "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
