#!/usr/bin/env python3
"""Thresholded benchmark regression gate for bench/replay_throughput.

Compares a google-benchmark JSON result against bench/baseline.json and
fails (exit 1) when any gated benchmark regressed by more than the
threshold (default 10%).

Raw events/sec depends on the host, so the gate scores each benchmark by
its *calibration-normalized ratio*: throughput divided by the
BM_CalendarCalibration items/sec measured in the same run. The calibration
loop (raw calendar push/pop at fixed occupancy) scales with machine speed
the same way the replay loop does, so the ratio is stable across hosts
while still catching real regressions in the simulation hot path.

The parallel-engine replay row (BM_ReplayThroughputParallel/GS) is checked
differently: its absolute throughput depends on the core count, so instead
of a normalized ratio the gate asserts a >= 1.5x events/sec speedup over
the serial GS row — but only on runners with >= 4 cores. Smaller runners
print an explicit SKIPPED line (recording the core count from the gbench
context) rather than passing silently.

Usage:
  # Gate a fresh run against the checked-in baseline:
  ./build/bench/replay_throughput --benchmark_format=json > results.json
  python3 tools/bench_compare.py results.json bench/baseline.json

  # Refresh the baseline after an intentional performance change
  # (commit the updated bench/baseline.json with the change itself,
  #  and record the measured numbers in docs/PERFORMANCE.md):
  python3 tools/bench_compare.py results.json bench/baseline.json --update
"""

import argparse
import json
import sys

CALIBRATION = "BM_CalendarCalibration"
GATED = ["BM_ReplayThroughput/GS", "BM_ReplayThroughput/LS"]
# The parallel-engine replay (bit-identical results, wall-clock row). Not
# ratio-gated — its throughput depends on the core count — but on a runner
# with >= MIN_SPEEDUP_CORES cores it must beat the serial GS row by the
# speedup floor. Smaller runners SKIP that assertion out loud; they never
# silently pass it (docs/PARALLEL.md).
PARALLEL = "BM_ReplayThroughputParallel/GS/real_time"
PARALLEL_BASELINE_OF = "BM_ReplayThroughput/GS"
MIN_SPEEDUP = 1.5
MIN_SPEEDUP_CORES = 4


def load_results(path):
    """Return ({benchmark name: items_per_second}, num_cpus) from gbench JSON."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count; keep
        # plain iteration rows only.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rate = bench.get("items_per_second")
        if rate:
            rates[bench["name"]] = rate
    return rates, doc.get("context", {}).get("num_cpus")


def check_parallel_speedup(rates, num_cpus, policy=None):
    """Assert the parallel engine's speedup, or skip loudly. Returns ok.

    `policy` is the baseline's optional "parallel" object; keys override
    the module defaults so the floor lives in bench/baseline.json next to
    the serial ratios.
    """
    policy = policy or {}
    parallel = policy.get("benchmark", PARALLEL)
    over = policy.get("speedup_over", PARALLEL_BASELINE_OF)
    min_speedup = policy.get("min_speedup", MIN_SPEEDUP)
    min_cores = policy.get("min_cores", MIN_SPEEDUP_CORES)
    if parallel not in rates:
        print(f"parallel speedup: SKIPPED ({parallel} absent from results)")
        return True
    speedup = rates[parallel] / rates[over]
    if num_cpus is None or num_cpus < min_cores:
        cores = "unknown" if num_cpus is None else str(num_cpus)
        print(f"parallel speedup: {speedup:.2f}x — assertion SKIPPED "
              f"(runner has {cores} cores, need >= {min_cores})")
        return True
    status = "ok" if speedup >= min_speedup else "REGRESSION"
    print(f"parallel speedup: {speedup:.2f}x vs required {min_speedup}x "
          f"on {num_cpus} cores {status}")
    return speedup >= min_speedup


def normalized_ratios(rates):
    calibration = rates.get(CALIBRATION)
    if not calibration:
        sys.exit(f"error: results lack {CALIBRATION}; cannot normalize")
    missing = [name for name in GATED if name not in rates]
    if missing:
        sys.exit(f"error: results lack gated benchmarks: {', '.join(missing)}")
    return {name: rates[name] / calibration for name in GATED}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="google-benchmark JSON output")
    parser.add_argument("baseline", help="baseline JSON (bench/baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated fractional regression (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results instead of gating")
    args = parser.parse_args()

    rates, num_cpus = load_results(args.results)
    ratios = normalized_ratios(rates)

    if args.update:
        baseline = {
            "comment": "Calibration-normalized throughput baseline; see "
                       "tools/bench_compare.py and docs/PERFORMANCE.md for "
                       "the update workflow.",
            "normalized_to": CALIBRATION,
            "ratios": {name: round(ratio, 4) for name, ratio in ratios.items()},
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        for name, ratio in ratios.items():
            print(f"baseline {name}: ratio {ratio:.4f}")
        print(f"updated {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    expected = baseline_doc["ratios"]

    failed = False
    for name in GATED:
        if name not in expected:
            sys.exit(f"error: baseline lacks {name}; re-run with --update")
        current, base = ratios[name], expected[name]
        change = current / base - 1.0
        status = "ok"
        if change < -args.threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name}: ratio {current:.4f} vs baseline {base:.4f} "
              f"({change:+.1%}) {status}")

    if not check_parallel_speedup(rates, num_cpus, baseline_doc.get("parallel")):
        failed = True

    if failed:
        print(f"FAIL: regression beyond {args.threshold:.0%} threshold; "
              "if intentional, refresh the baseline with --update "
              "(workflow in docs/PERFORMANCE.md)")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
