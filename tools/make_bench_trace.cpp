// make_bench_trace — deterministic workload generator for the replay
// throughput benchmark (bench/replay_throughput.cpp, docs/PERFORMANCE.md).
//
// Wraps the synthetic DAS1 log generator with bench-pinned defaults: a
// fixed seed and a 120k-job log (4x the paper's three-month trace, spread
// over a proportionally longer span so the arrival intensity stays DAS-
// like). The benchmark itself synthesises the same log in memory via the
// same library call; this tool exists so the trace can be materialised,
// inspected with `mcsim trace-stats`, and replayed with `mcsim replay`
// outside the benchmark harness.
//
// The printed FNV-1a digest covers every replay-relevant field, so two
// invocations (or two machines) can assert they benchmark the same input.
#include <cstdint>
#include <iostream>

#include "trace/swf.hpp"
#include "trace/synthetic_log.hpp"
#include "util/cli.hpp"

namespace {

// FNV-1a over the replay-relevant record fields (submit, run, processors,
// user), mirroring the spirit of the golden gate's stream digest.
std::uint64_t trace_digest(const mcsim::SwfTrace& trace) {
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffset;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffU;
      hash *= kPrime;
    }
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  for (const auto& record : trace.records) {
    mix(static_cast<std::uint64_t>(record.job_id));
    mix_double(record.submit_time);
    mix_double(record.run_time);
    mix(static_cast<std::uint64_t>(record.processors));
    mix(static_cast<std::uint64_t>(record.user_id));
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  mcsim::CliParser parser(
      "make_bench_trace: deterministic >=100k-job synthetic SWF for the "
      "replay throughput benchmark");
  parser.add_option("sim-jobs", "120000", "jobs in the log (bench floor: 100000)");
  parser.add_option("days", "360", "log span in days");
  parser.add_option("seed", "20031128", "random seed (pinned for the benchmark)");
  parser.add_option("out", "bench_trace.swf", "output SWF path");
  try {
    if (!parser.parse(argc, argv)) return 0;

    mcsim::SyntheticLogConfig config;
    config.num_jobs = parser.get_uint("sim-jobs");
    config.duration_seconds = parser.get_double("days") * 86400.0;
    config.seed = parser.get_uint("seed");
    const mcsim::SwfTrace trace = mcsim::generate_synthetic_das1_log(config);
    mcsim::write_swf_file(parser.get("out"), trace);
    std::cout << "wrote " << trace.records.size() << " jobs to " << parser.get("out")
              << "\ndigest 0x" << std::hex << trace_digest(trace) << std::dec << '\n';
  } catch (const std::exception& error) {
    std::cerr << "make_bench_trace: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
