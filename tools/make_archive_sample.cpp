// make_archive_sample — deterministic builder for the checked-in trace
// corpus (data/archive_samples/, docs/WORKLOADS.md).
//
// Two modes:
//
//   --from=<log.swf>    down-sample a real (possibly multi-million-line)
//                       archive log: two streaming passes — a scan to count
//                       records, then a stride-keep pass — so arbitrarily
//                       large inputs process at O(1) memory. Every k-th
//                       record is kept, submit times are rebased to the
//                       first kept record, ids are renumbered, and the
//                       source's declared machine (MaxProcs/MaxNodes)
//                       carries over.
//
//   --style=<name>      synthesise a medium sample in the dialect of a
//                       well-known Parallel Workloads Archive log
//                       (sdsc_sp2, ctc, kth, das2). The job stream comes
//                       from the synthetic DAS1 generator re-targeted at
//                       the style's machine; the dialect quirks the
//                       streaming reader must absorb are layered on top
//                       deterministically:
//                         * a PWA-style header (MaxNodes and/or MaxProcs,
//                           MaxJobs, UnixStartTime, free-text notes);
//                         * bounded out-of-order submit lines (records
//                           displaced well inside the default 4096-record
//                           lookahead window);
//                         * ~2% cancelled records (run time 0 — counted,
//                           then skipped by the usable filter);
//                         * truncated lines that drop the unused trailing
//                           "-1" columns, as archive logs do.
//
// Everything derives from --seed, so regenerating a sample reproduces it
// byte-for-byte — which is what lets the per-log summary goldens stay
// sealed (mcsim replay --corpus --check-goldens).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/swf.hpp"
#include "trace/swf_stream.hpp"
#include "trace/synthetic_log.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using mcsim::SwfFileStream;
using mcsim::TraceRecord;

/// Minimal deterministic generator for the quirk decisions (which lines to
/// displace, cancel, truncate). SplitMix64: tiny, seedable, and not shared
/// with the engine's RNG, so sample synthesis can never perturb it.
class QuirkRng {
 public:
  explicit QuirkRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

struct Style {
  const char* name;
  const char* computer;
  /// Machine declaration: procs > 0 emits MaxProcs, nodes > 0 MaxNodes.
  std::int64_t max_nodes;
  std::int64_t max_procs;
};

// The declared machines match the archive originals these styles imitate;
// das2 declares both (two processors per node), exercising the reader's
// MaxProcs-over-MaxNodes preference.
constexpr Style kStyles[] = {
    {"sdsc_sp2", "IBM SP2", 128, -1},
    {"ctc", "IBM SP2", -1, 430},
    {"kth", "IBM SP2", 100, -1},
    {"das2", "DAS-2 fs0", 72, 144},
};

const Style* find_style(const std::string& name) {
  for (const Style& style : kStyles) {
    if (name == style.name) return &style;
  }
  return nullptr;
}

/// One job record in the style dialect. `truncated` drops the unused
/// trailing -1 columns (archive logs do this; absent fields read as -1).
void write_record_line(std::ostream& out, const TraceRecord& rec, int status,
                       bool truncated) {
  out << rec.job_id << ' '                                // 1 job id
      << mcsim::format_double_roundtrip(rec.submit_time)  // 2 submit
      << ' ' << mcsim::format_double_roundtrip(rec.wait_time)  // 3 wait
      << ' ' << mcsim::format_double_roundtrip(rec.run_time)   // 4 run
      << ' ' << rec.processors                            // 5 allocated
      << " -1 -1 " << rec.processors                      // 6,7; 8 requested
      << " -1 -1 "                                        // 9,10
      << status << ' ' << rec.user_id;                    // 11 status, 12 user
  if (!truncated) out << " -1 -1 -1 -1 -1 -1";            // 13..18
  out << '\n';
}

int synthesize(const Style& style, std::uint64_t jobs, std::uint64_t seed,
               const std::string& out_path) {
  // Job stream: the synthetic DAS1 model re-targeted at the style's
  // machine, spread over a span proportional to the job count.
  mcsim::SyntheticLogConfig config;
  config.num_jobs = jobs;
  const std::int64_t width =
      style.max_procs > 0 ? style.max_procs : style.max_nodes;
  // The DAS-s-128 size distribution draws up to 128 processors, so the
  // generator needs at least that much machine; narrower styles (kth's
  // 100 nodes) clamp the drawn widths down to their declared machine
  // below, which is exactly the saturating behaviour the archive logs
  // show at full-machine jobs.
  config.cluster_size =
      static_cast<std::uint32_t>(std::max<std::int64_t>(width, 128));
  config.duration_seconds =
      90.0 * 24 * 3600 * (static_cast<double>(jobs) / 30000.0);
  config.seed = seed;
  mcsim::SwfTrace trace = mcsim::generate_synthetic_das1_log(config);
  for (TraceRecord& rec : trace.records) {
    rec.processors = std::min(rec.processors, static_cast<std::uint32_t>(width));
  }

  QuirkRng rng(seed * 0x51ed2701u + 17);

  // Bounded disorder: rotate scattered short runs, displacing each member
  // at most kWindow-1 positions — far inside the streaming reader's
  // default 4096-record lookahead, so replay still reproduces the full
  // sort bit-exactly.
  constexpr std::size_t kWindow = 8;
  std::vector<TraceRecord>& records = trace.records;
  for (std::size_t i = 0; i + kWindow < records.size(); i += kWindow) {
    if (rng.below(100) < 25) {
      std::rotate(records.begin() + static_cast<std::ptrdiff_t>(i),
                  records.begin() + static_cast<std::ptrdiff_t>(i + 1),
                  records.begin() + static_cast<std::ptrdiff_t>(i + kWindow));
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "make_archive_sample: cannot open " << out_path << '\n';
    return 1;
  }
  out << "; SWF format, version 2\n";
  out << "; Computer: " << style.computer << '\n';
  out << "; Note: synthetic sample in the style of the " << style.name
      << " archive log\n";
  out << "; Note: generated by make_archive_sample --style=" << style.name
      << " --jobs=" << jobs << " --seed=" << seed << '\n';
  out << "; MaxJobs: " << records.size() << '\n';
  out << "; MaxRecords: " << records.size() << '\n';
  if (style.max_nodes > 0) out << "; MaxNodes: " << style.max_nodes << '\n';
  if (style.max_procs > 0) out << "; MaxProcs: " << style.max_procs << '\n';
  out << "; UnixStartTime: 0\n";

  std::uint64_t cancelled = 0;
  std::uint64_t truncated = 0;
  std::uint64_t id = 1;
  for (TraceRecord rec : records) {
    rec.job_id = id++;
    int status = rec.killed_by_limit ? 5 : 1;
    if (rng.below(100) < 2) {
      // Cancelled before starting: zero run time, status 0. Counted by the
      // scan, skipped by the usable filter.
      rec.run_time = 0.0;
      rec.wait_time = 0.0;
      status = 0;
      ++cancelled;
    }
    const bool drop_tail = rng.below(100) < 10;
    if (drop_tail) ++truncated;
    write_record_line(out, rec, status, drop_tail);
  }

  std::cout << "wrote " << records.size() << " records (" << cancelled
            << " cancelled, " << truncated << " truncated lines) to "
            << out_path << '\n';
  return 0;
}

int downsample(const std::string& from, std::uint64_t jobs,
               const std::string& out_path) {
  // Pass 1: O(1)-memory scan for the record count and the declared machine.
  const mcsim::SwfScan scan = mcsim::scan_swf_file(from);
  if (scan.summary.total_records == 0) {
    std::cerr << "make_archive_sample: " << from << " has no job records\n";
    return 1;
  }
  const std::uint64_t stride =
      jobs == 0 ? 1 : std::max<std::uint64_t>(1, scan.summary.total_records / jobs);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "make_archive_sample: cannot open " << out_path << '\n';
    return 1;
  }
  out << "; Derived by make_archive_sample --from=" << from
      << " (every " << stride << "th of " << scan.summary.total_records
      << " records, submit times rebased)\n";
  if (scan.header.max_nodes >= 0) out << "; MaxNodes: " << scan.header.max_nodes << '\n';
  if (scan.header.max_procs >= 0) out << "; MaxProcs: " << scan.header.max_procs << '\n';
  out << "; UnixStartTime: 0\n";

  // Pass 2: stride-keep, still one record at a time.
  SwfFileStream stream(from);
  TraceRecord rec;
  std::uint64_t index = 0;
  std::uint64_t kept = 0;
  double base_submit = 0.0;
  while (stream.next(rec)) {
    if (index++ % stride != 0) continue;
    if (kept == 0) base_submit = rec.submit_time;
    rec.submit_time -= base_submit;
    rec.job_id = ++kept;
    write_record_line(out, rec, rec.killed_by_limit ? 5 : 1, false);
  }
  std::cout << "kept " << kept << " of " << scan.summary.total_records
            << " records (stride " << stride << ") -> " << out_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mcsim::CliParser parser(
      "make_archive_sample: deterministic archive-style SWF samples "
      "(down-sample a real log, or synthesise a dialect sample)");
  parser.add_option("from", "", "down-sample this SWF log (streaming, O(1) memory)");
  parser.add_option("style", "",
                    "synthesise in this archive dialect: sdsc_sp2, ctc, kth, das2");
  parser.add_option("jobs", "2500", "records to keep / generate (0 = all, --from only)");
  parser.add_option("seed", "20031128", "quirk + generator seed (--style only)");
  parser.add_option("out", "sample.swf", "output SWF path");
  try {
    if (!parser.parse(argc, argv)) return 0;
    const std::string from = parser.get("from");
    const std::string style_name = parser.get("style");
    if (from.empty() == style_name.empty()) {
      std::cerr << "make_archive_sample: pass exactly one of --from / --style\n";
      return 1;
    }
    if (!from.empty()) {
      return downsample(from, parser.get_uint("jobs"), parser.get("out"));
    }
    const Style* style = find_style(style_name);
    if (style == nullptr) {
      std::cerr << "make_archive_sample: unknown style '" << style_name
                << "' (sdsc_sp2, ctc, kth, das2)\n";
      return 1;
    }
    return synthesize(*style, parser.get_uint("jobs"), parser.get_uint("seed"),
                      parser.get("out"));
  } catch (const std::exception& error) {
    std::cerr << "make_archive_sample: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
