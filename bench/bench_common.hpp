// Shared wiring for the figure/table reproduction harnesses.
//
// Every harness accepts:
//   --jobs=N     parallel simulation runs (default: all hardware threads);
//                results are bit-identical for every N
//   --sim-jobs=N simulated jobs per sweep point (default 20000; the env var
//                MCSIM_BENCH_JOBS overrides the default for the whole suite)
//   --seed=S     master seed (default 20030622 — HPDC'03's opening day)
//   --csv=PATH   also write every point to a CSV file
//   --quick      quarter-size run for smoke testing
// and prints the reproduced table/figure to stdout in the paper's layout.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/gnuplot.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace mcsim::bench {

struct BenchOptions {
  std::uint64_t sim_jobs = 20000;
  std::uint64_t seed = 20030622;
  std::string csv_path;
  std::string gnuplot_dir;
  /// Parallel simulation runs (Runner workers); 0 = all hardware threads.
  unsigned jobs = 0;
  bool quick = false;
};

inline std::optional<BenchOptions> parse_bench_options(
    int argc, const char* const* argv, const std::string& description) {
  CliParser parser(description);
  std::uint64_t default_sim_jobs = 20000;
  if (const char* env = std::getenv("MCSIM_BENCH_JOBS"); env != nullptr) {
    default_sim_jobs = std::strtoull(env, nullptr, 10);
    if (default_sim_jobs == 0) default_sim_jobs = 20000;
  }
  parser.add_option("jobs", std::to_string(exp::Runner::default_jobs()),
                    "parallel simulation runs (worker threads)");
  parser.add_option("sim-jobs", std::to_string(default_sim_jobs),
                    "simulated jobs per sweep point");
  parser.add_option("seed", "20030622", "master random seed");
  parser.add_option("csv", "", "also write results to this CSV file");
  parser.add_option("gnuplot", "", "also write .dat/.gp files to this directory");
  parser.add_option("log", "warn", "log level (debug|info|warn|error|off)");
  parser.add_flag("quick", "quarter-size smoke run");
  if (!parser.parse(argc, argv)) return std::nullopt;
  set_log_level(parse_log_level(parser.get("log")));

  BenchOptions options;
  options.jobs = static_cast<unsigned>(parser.get_uint("jobs"));
  if (options.jobs == 0) options.jobs = exp::Runner::default_jobs();
  options.sim_jobs = parser.get_uint("sim-jobs");
  options.seed = parser.get_uint("seed");
  options.csv_path = parser.get("csv");
  options.gnuplot_dir = parser.get("gnuplot");
  options.quick = parser.get_flag("quick");
  if (options.quick) options.sim_jobs = std::max<std::uint64_t>(2000, options.sim_jobs / 4);
  return options;
}

/// The default utilization grid for the response-time figures.
inline std::vector<double> figure_grid() { return SweepConfig::grid(0.30, 0.80, 0.05); }

inline SweepConfig sweep_config(const BenchOptions& options) {
  SweepConfig config;
  config.target_utilizations = figure_grid();
  config.jobs_per_point = options.sim_jobs;
  config.seed = options.seed;
  config.parallelism = options.jobs;
  return config;
}

/// Print a panel and (if requested) append it to the CSV file.
class PanelSink {
 public:
  explicit PanelSink(const BenchOptions& options) : gnuplot_dir_(options.gnuplot_dir) {
    if (!options.csv_path.empty()) {
      csv_.open(options.csv_path);
      if (!csv_.good()) {
        std::cerr << "cannot open CSV path " << options.csv_path << '\n';
      }
    }
  }

  void emit(const std::string& title, const std::vector<SweepSeries>& series,
            bool ascii_plot = true) {
    print_panel(std::cout, title, series);
    if (ascii_plot) print_ascii_plot(std::cout, series);
    std::cout << '\n';
    if (csv_.is_open()) {
      write_panel_csv(csv_, title, series, first_panel_);
      first_panel_ = false;
    }
    if (!gnuplot_dir_.empty()) {
      std::string basename;
      for (char c : title) {
        basename += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      }
      const auto files = write_gnuplot_panel(gnuplot_dir_, basename, title, series);
      std::cout << "(gnuplot: " << files.script_path << ")\n";
    }
  }

 private:
  std::ofstream csv_;
  std::string gnuplot_dir_;
  bool first_panel_ = true;
};

}  // namespace mcsim::bench
