// Fig. 7 — "The response time as a function of the gross and the net
// utilization for the LS, LP and GS policies and for the three
// job-component-size limits (balanced local queues for LS and LP)".
//
// Nine panels. For a given workload the net utilization is the gross
// divided by the closed-form ratio of Sect. 4 (sizes and service times are
// independent), so each curve appears twice: once against gross, once
// against net. Paper shape: the horizontal gap grows as the limit shrinks
// (more multi-component jobs); at limit 16 LS reaches the highest gross
// utilization and therefore shows the largest gap.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 7: response time vs gross and net utilization");
  if (!options) return 0;
  const auto sweep = bench::sweep_config(*options);
  bench::PanelSink sink(*options);

  std::cout << "== Fig. 7: gross vs net utilization (balanced local queues) ==\n\n";
  for (PolicyKind policy : {PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kGS}) {
    for (std::uint32_t limit : das::kComponentLimits) {
      PaperScenario scenario;
      scenario.policy = policy;
      scenario.component_limit = limit;
      const auto series = run_sweep(scenario, sweep);
      const double ratio = gross_net_ratio(das_s_128(), limit, 4, 1.25);

      std::cout << "-- " << policy_name(policy) << " limit " << limit
                << "  (gross/net ratio " << format_util(ratio) << ")\n";
      TextTable table({"gross util", "net util", "mean response (s)", "status"});
      for (const auto& point : series.points) {
        table.add_row(
            {format_util(point.target_gross_utilization),
             format_util(point.target_gross_utilization / ratio),
             point.result.unstable ? "-" : format_double(point.result.mean_response(), 1),
             point.result.unstable ? "unstable" : "ok"});
      }
      std::cout << table.render() << '\n';
      sink.emit(std::string("Fig. 7 panel: ") + policy_name(policy) + " limit " +
                    std::to_string(limit),
                {series}, /*ascii_plot=*/false);
    }
  }
  std::cout << "ratios grow as the limit shrinks: 16 -> "
            << format_util(gross_net_ratio(das_s_128(), 16, 4, 1.25)) << ", 24 -> "
            << format_util(gross_net_ratio(das_s_128(), 24, 4, 1.25)) << ", 32 -> "
            << format_util(gross_net_ratio(das_s_128(), 32, 4, 1.25)) << '\n';
  return 0;
}
