// Table 3 — "The maximal gross and net utilizations for different
// job-component-size limits for the GS policy", measured with the paper's
// constant-backlog method (Sect. 4 / reference [9]), plus the SC value the
// paper quotes alongside. LS and LP rows are an extension of ours (the
// paper's analysis applies only to single-global-queue policies; we keep a
// constant total backlog routed through the submission weights).
#include <iostream>

#include "bench_common.hpp"
#include "core/saturation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Table 3: maximal gross and net utilizations (constant backlog)");
  if (!options) return 0;
  const std::uint64_t completions = std::max<std::uint64_t>(options->sim_jobs, 20000);

  std::cout << "== Table 3: maximal utilizations, constant-backlog method ==\n\n";
  TextTable table({"policy", "limit", "max gross util", "max net util", "gross/net"});

  for (std::uint32_t limit : das::kComponentLimits) {
    PaperScenario scenario;
    scenario.policy = PolicyKind::kGS;
    scenario.component_limit = limit;
    const auto result =
        run_saturation(make_saturation_config(scenario, completions, options->seed));
    table.add_row({"GS", std::to_string(limit),
                   format_util(result.maximal_gross_utilization),
                   format_util(result.maximal_net_utilization),
                   format_util(result.maximal_gross_utilization /
                               result.maximal_net_utilization)});
  }
  {
    PaperScenario scenario;
    scenario.policy = PolicyKind::kSC;
    const auto result =
        run_saturation(make_saturation_config(scenario, completions, options->seed));
    table.add_row({"SC", "-", format_util(result.maximal_gross_utilization),
                   format_util(result.maximal_net_utilization), "1.000"});
  }
  for (std::uint32_t limit : das::kComponentLimits) {
    for (PolicyKind policy : {PolicyKind::kLS, PolicyKind::kLP}) {
      PaperScenario scenario;
      scenario.policy = policy;
      scenario.component_limit = limit;
      const auto result =
          run_saturation(make_saturation_config(scenario, completions, options->seed));
      table.add_row({std::string(policy_name(policy)) + " (ext.)", std::to_string(limit),
                     format_util(result.maximal_gross_utilization),
                     format_util(result.maximal_net_utilization),
                     format_util(result.maximal_gross_utilization /
                                 result.maximal_net_utilization)});
    }
  }
  std::cout << table.render();

  std::cout << "\nclosed-form gross/net ratios (Sect. 4, independent of policy):\n";
  for (std::uint32_t limit : das::kComponentLimits) {
    std::cout << "  limit " << limit << ": "
              << format_util(gross_net_ratio(das_s_128(), limit, 4, 1.25)) << '\n';
  }
  std::cout << "(paper: measured maximal utilizations agree with the Fig. 7 curves;\n"
               " SC's constant-backlog maximum matches its Fig. 3 asymptote)\n";
  return 0;
}
