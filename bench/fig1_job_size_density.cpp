// Fig. 1 — "The density of the job-request sizes for the largest DAS1
// cluster (128 processors)".
//
// Generates the synthetic DAS1 log, derives the per-size job counts, and
// prints them split into powers of two vs other numbers, exactly the two
// series the figure plots. Also prints the summary statistics the paper
// reports about the log (job count, users, distinct sizes, mean, CV).
#include <iostream>

#include "bench_common.hpp"
#include "trace/synthetic_log.hpp"
#include "util/csv.hpp"
#include "trace/trace_stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 1: density of DAS1 job-request sizes (synthetic log)");
  if (!options) return 0;

  SyntheticLogConfig config;
  config.num_jobs = std::max<std::uint64_t>(options->sim_jobs, 10000);
  config.seed = options->seed;
  const SwfTrace trace = generate_synthetic_das1_log(config);
  const auto summary = summarize_trace(trace.records);
  const auto density = job_size_density(trace.records);

  std::cout << "== Fig. 1: job-request size density (synthetic DAS1 log) ==\n";
  std::cout << "log: " << summary.job_count << " jobs, " << summary.user_count
            << " users, " << format_double(summary.duration / 86400.0, 1) << " days\n";
  std::cout << "sizes: " << summary.distinct_sizes << " distinct values in ["
            << summary.min_size << ", " << summary.max_size << "], mean "
            << format_double(summary.mean_size, 2) << ", cv "
            << format_double(summary.size_cv, 2) << "\n";
  std::cout << "paper: 58 distinct values in [1, 128]; strong preference for small\n"
               "       numbers and powers of two (70.5% of jobs)\n\n";

  TextTable table({"size", "jobs", "fraction", "series"});
  for (const auto& [size, count] : density.counts()) {
    const auto usize = static_cast<std::uint32_t>(size);
    const bool pow2 = (usize & (usize - 1)) == 0;
    table.add_row({std::to_string(size), std::to_string(count),
                   format_double(density.fraction(size), 4),
                   pow2 ? "powers of 2" : "other numbers"});
  }
  std::cout << table.render();
  std::cout << "\npower-of-two fraction: " << format_double(summary.power_of_two_fraction, 3)
            << " (paper Table 1 total: 0.705)\n";

  if (!options->csv_path.empty()) {
    std::ofstream csv(options->csv_path);
    CsvWriter writer(csv);
    writer.header({"size", "jobs", "fraction", "power_of_two"});
    for (const auto& [size, count] : density.counts()) {
      const auto usize = static_cast<std::uint32_t>(size);
      writer.add(size).add(count).add(density.fraction(size), 6)
          .add(std::string((usize & (usize - 1)) == 0 ? "1" : "0"));
      writer.end_row();
    }
  }
  return 0;
}
