// Ablation: the wide-area extension factor (the paper's headline claim).
//
// "Co-allocation remains a viable option while the duration of the global
// communication is covered by an extension factor of 1.25" (Conclusions).
//
// We sweep the extension factor and compare LS on the 4x32 multicluster
// against SC on the single 128-processor cluster on the NET axis — the
// honest one, since gross utilization counts time spent waiting on the
// wide-area links as work. Viability = LS's maximal net utilization stays
// near SC's; at a factor of 1 LS can even beat SC (end of Sect. 4).
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Ablation: wide-area extension factor sweep (LS vs SC)");
  if (!options) return 0;

  const double factors[] = {1.0, 1.1, 1.25, 1.4, 1.6, 2.0};

  // SC is unaffected by the factor: one reference sweep.
  PaperScenario sc;
  sc.policy = PolicyKind::kSC;
  const auto sc_series = run_sweep(sc, bench::sweep_config(*options));
  const double sc_max_net = sc_series.max_stable_utilization();  // gross == net for SC

  std::cout << "== Ablation: service-time extension factor (limit 16, balanced) ==\n"
            << "SC reference maximal (net) utilization: " << format_util(sc_max_net)
            << "\n\n";

  TextTable table({"extension factor", "LS max gross util", "LS max net util",
                   "net vs SC", "verdict"});
  for (double factor : factors) {
    PaperScenario ls;
    ls.policy = PolicyKind::kLS;
    ls.component_limit = 16;
    ls.extension_factor = factor;
    const auto series = run_sweep(ls, bench::sweep_config(*options));
    const double max_gross = series.max_stable_utilization();
    const double ratio = gross_net_ratio(das_s_128(), 16, 4, factor);
    const double max_net = max_gross / ratio;
    const double vs_sc = max_net / sc_max_net;
    table.add_row({format_double(factor, 2), format_util(max_gross), format_util(max_net),
                   format_double(vs_sc, 2) + "x",
                   vs_sc >= 0.85 ? "co-allocation viable" : "single cluster wins"});
  }
  std::cout << table.render();
  std::cout << "\npaper: viable while the factor stays within ~1.25; at 1.0 LS can\n"
               "even outperform SC (no wide-area penalty, plus multi-queue\n"
               "backfilling). Watch the verdict flip as the factor grows.\n";
  return 0;
}
