// Table 1 — "The fractions of jobs with sizes powers of two".
//
// Prints three columns: the paper's values, the analytic reconstruction
// (DAS-s-128, exact by construction) and the fractions measured on the
// synthetic log (sampled, so they carry sampling noise).
#include <iostream>

#include "bench_common.hpp"
#include "trace/synthetic_log.hpp"
#include "trace/trace_stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Table 1: fractions of jobs with power-of-two sizes");
  if (!options) return 0;

  SyntheticLogConfig config;
  config.num_jobs = std::max<std::uint64_t>(options->sim_jobs, 10000);
  config.seed = options->seed;
  const SwfTrace trace = generate_synthetic_das1_log(config);

  std::cout << "== Table 1: fractions of jobs with sizes powers of two ==\n\n";
  TextTable table({"total job size", "paper", "DAS-s-128 (exact)", "synthetic log"});
  const auto& dist = das_s_128();
  for (const auto& row : das1_power_of_two_fractions()) {
    table.add_row({std::to_string(row.size), format_util(row.fraction),
                   format_util(dist.probability_of(row.size)),
                   format_util(fraction_with_size(trace.records, row.size))});
  }
  std::cout << table.render();

  double paper_total = 0.0;
  for (const auto& row : das1_power_of_two_fractions()) paper_total += row.fraction;
  std::cout << "\ntotal power-of-two mass: paper " << format_util(paper_total)
            << ", log " << format_util(summarize_trace(trace.records).power_of_two_fraction)
            << '\n';
  return 0;
}
