// Fig. 4 — "The response times for job-component size limits of 16, 24 and
// 32 (left-right) close to LP's saturation point; for LS and LP the local
// queues are balanced (top) and unbalanced (bottom)".
//
// For each (limit, balance) the harness locates LP's saturation by a coarse
// sweep, backs off one grid step, and reports for GS, LS, LP and SC the
// mean response time — split for LP into local-queue and global-queue
// averages, the paper's bar triple (Local / Total Average / Global) — plus
// the gross and net utilizations printed above each chart in the paper.
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 4: per-queue response times close to LP's saturation");
  if (!options) return 0;

  std::cout << "== Fig. 4: response times near LP's saturation point ==\n"
            << "(paper shape: LP's global queue dwarfs its local queues; LS is on a\n"
            << " low point of its curve at these utilizations)\n\n";

  for (bool balanced : {true, false}) {
    for (std::uint32_t limit : das::kComponentLimits) {
      // Locate LP's saturation.
      PaperScenario lp;
      lp.policy = PolicyKind::kLP;
      lp.component_limit = limit;
      lp.balanced_queues = balanced;
      SweepConfig coarse;
      coarse.target_utilizations = SweepConfig::grid(0.30, 0.80, 0.05);
      coarse.jobs_per_point = options->sim_jobs / 2 + 1000;
      coarse.seed = options->seed;
      const double lp_max = run_sweep(lp, coarse).max_stable_utilization();
      const double rho = lp_max > 0.0 ? lp_max : 0.30;

      std::cout << "-- limit " << limit << ", " << (balanced ? "balanced" : "unbalanced")
                << " local queues: utilization " << format_util(rho)
                << " (LP close to saturation)\n";

      TextTable table({"policy", "local avg (s)", "total avg (s)", "global avg (s)",
                       "gross util", "net util"});
      for (PolicyKind policy :
           {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
        PaperScenario scenario = lp;
        scenario.policy = policy;
        scenario.balanced_queues =
            balanced || policy == PolicyKind::kSC || policy == PolicyKind::kGS;
        const auto result =
            run_simulation(make_paper_config(scenario, rho, options->sim_jobs, options->seed));
        auto cell = [&](const RunningStats& stats) {
          return stats.count() ? format_double(stats.mean(), 0) : std::string("-");
        };
        table.add_row({result.policy,
                       cell(result.response_local),
                       result.unstable ? "(unstable)" : cell(result.response_all),
                       cell(result.response_global),
                       format_util(result.offered_gross_utilization),
                       format_util(result.offered_net_utilization)});
      }
      std::cout << table.render() << '\n';
    }
  }
  std::cout << "closed-form gross/net ratios (Sect. 4): limit 16 "
            << format_util(gross_net_ratio(das_s_128(), 16, 4, 1.25)) << ", 24 "
            << format_util(gross_net_ratio(das_s_128(), 24, 4, 1.25)) << ", 32 "
            << format_util(gross_net_ratio(das_s_128(), 32, 4, 1.25)) << '\n';
  return 0;
}
