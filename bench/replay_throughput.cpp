// Macro-benchmark for the engine hot loop: replay a 120k-job synthetic SWF
// (the same log tools/make_bench_trace writes, synthesised here in memory)
// through the full engine and report end-to-end events/sec and jobs/sec.
//
// This is the benchmark behind BENCH_hot_loop.json and the thresholded CI
// regression gate (tools/bench_compare.py + bench/baseline.json, see
// docs/PERFORMANCE.md). Two design points matter for gating:
//
//   * ReplayGS / ReplayLS exercise the per-event path end to end — job
//     construction, queue hops, placement, calendar traffic — on a trace
//     long enough (100k replayed jobs) that per-event costs dominate setup.
//   * CalendarCalibration is a machine-speed yardstick: the gate compares
//     each benchmark's time *relative to the calibration time from the same
//     run*, so a uniformly slower machine (or a noisy CI runner) does not
//     produce false regressions; only the engine getting slower relative to
//     a fixed workload does.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>

#include "core/engine.hpp"
#include "sim/calendar.hpp"
#include "trace/synthetic_log.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim {
namespace {

// Bench-pinned trace parameters; keep in sync with tools/make_bench_trace.
constexpr std::uint64_t kTraceJobs = 120000;
constexpr double kTraceDays = 360.0;
constexpr std::uint64_t kReplayJobs = 100000;
// Offered gross utilization the submit axis is scaled to. Comfortably below
// every policy's saturation point so the replay is a steady-state run, not
// a backlog-growth measurement.
constexpr double kUtilization = 0.5;

/// The shared in-memory bench trace, synthesised once per process.
const std::shared_ptr<const TraceWorkloadConfig>& bench_trace() {
  static const std::shared_ptr<const TraceWorkloadConfig> config = [] {
    SyntheticLogConfig log;
    log.num_jobs = kTraceJobs;
    log.duration_seconds = kTraceDays * 86400.0;
    const SwfTrace trace = generate_synthetic_das1_log(log);
    auto out = std::make_shared<TraceWorkloadConfig>();
    out->records = usable_trace_records(trace.records);
    out->component_limit = 16;
    out->num_clusters = 4;
    out->split_jobs = true;
    out->arrival_scale =
        trace_scale_for_utilization(out->records, 128, kUtilization);
    out->source_path = "<in-memory bench trace>";
    return std::shared_ptr<const TraceWorkloadConfig>(std::move(out));
  }();
  return config;
}

SimulationConfig replay_config(PolicyKind policy) {
  SimulationConfig config;
  config.policy = policy;
  config.cluster_sizes = {32, 32, 32, 32};
  config.trace_workload = bench_trace();
  config.total_jobs = kReplayJobs;
  return config;
}

void BM_ReplayThroughput(benchmark::State& state, PolicyKind policy) {
  const SimulationConfig config = replay_config(policy);
  std::uint64_t events = 0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    SimulationResult result = run_simulation(config);
    benchmark::DoNotOptimize(result);
    events += result.events_executed;
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs/sec"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

BENCHMARK_CAPTURE(BM_ReplayThroughput, GS, PolicyKind::kGS)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReplayThroughput, LS, PolicyKind::kLS)
    ->Unit(benchmark::kMillisecond);

// The same replay on the parallel engine (per-cluster LPs, full hardware
// worker crew; docs/PARALLEL.md). Results are bit-identical to the serial
// rows by contract — this row measures wall-clock only. The "workers"
// counter records the crew size so the gate (tools/bench_compare.py) can
// skip — not silently pass — the speedup assertion on small runners.
void BM_ReplayThroughputParallel(benchmark::State& state, PolicyKind policy) {
  SimulationConfig config = replay_config(policy);
  config.engine = EngineKind::kParallel;
  config.engine_threads = 0;  // all hardware threads
  std::uint64_t events = 0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    SimulationResult result = run_simulation(config);
    benchmark::DoNotOptimize(result);
    events += result.events_executed;
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs/sec"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
  state.counters["workers"] = static_cast<double>(
      std::max(1U, std::thread::hardware_concurrency()));
}

// UseRealTime: a crew's throughput is a wall-clock property — the main
// thread's CPU time would not see the workers. (The serial rows keep the
// default CPU clock; single-threaded, the two clocks agree.)
BENCHMARK_CAPTURE(BM_ReplayThroughputParallel, GS, PolicyKind::kGS)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Machine-speed yardstick for the regression gate: a fixed calendar
// hold-model loop (push one, pop one, at a steady occupancy) whose cost is
// dominated by the same cache/branch behaviour as the simulator's event
// loop but is independent of the engine code being gated.
void BM_CalendarCalibration(benchmark::State& state) {
  constexpr std::size_t kOccupancy = 1024;
  for (auto _ : state) {
    state.PauseTiming();
    Calendar calendar;
    double time = 0.0;
    for (std::size_t i = 0; i < kOccupancy; ++i) calendar.push(time + 1.0);
    state.ResumeTiming();
    for (int i = 0; i < 100000; ++i) {
      const auto entry = calendar.pop();
      time = entry.time;
      calendar.push(time + 1.0 + 0.001 * static_cast<double>(i % 97));
      benchmark::DoNotOptimize(entry);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}

BENCHMARK(BM_CalendarCalibration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mcsim

BENCHMARK_MAIN();
