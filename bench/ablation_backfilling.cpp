// Ablation: backfilling (extension beyond the paper).
//
// Sect. 3.2 traces the poor SC/GS performance to head-of-line blocking by
// very large jobs and fixes it by *capping the job size* (DAS-s-64). The
// modern alternative is backfilling. This harness compares, for SC and GS:
//   plain FCFS (the paper)  vs  aggressive backfilling  vs  EASY
// and also shows FCFS + DAS-s-64 for reference — backfilling recovers most
// of the benefit of the size cap without rejecting any jobs.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Ablation: FCFS vs aggressive vs EASY backfilling (SC, GS)");
  if (!options) return 0;

  auto run_point = [&](PolicyKind policy, BackfillMode mode, bool das64, double rho) {
    PaperScenario scenario;
    scenario.policy = policy;
    scenario.component_limit = 16;
    scenario.limit_total_size_64 = das64;
    auto config = make_paper_config(scenario, rho, options->sim_jobs, options->seed);
    config.backfill = mode;
    return run_simulation(config);
  };

  for (PolicyKind policy : {PolicyKind::kSC, PolicyKind::kGS}) {
    std::cout << "== Ablation: backfilling under " << policy_name(policy)
              << " (DAS-s-128, limit 16) ==\n\n";
    TextTable table({"gross util", "FCFS (s)", "aggressive (s)", "EASY (s)",
                     "FCFS+DAS-s-64 (s)"});
    for (double rho : SweepConfig::grid(0.40, 0.85, 0.05)) {
      std::vector<std::string> row{format_util(rho)};
      for (int variant = 0; variant < 4; ++variant) {
        const BackfillMode mode = variant == 1   ? BackfillMode::kAggressive
                                  : variant == 2 ? BackfillMode::kEasy
                                                 : BackfillMode::kNone;
        const auto result = run_point(policy, mode, /*das64=*/variant == 3, rho);
        row.push_back(result.unstable ? "-" : format_double(result.mean_response(), 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render() << '\n';
  }
  std::cout << "expected shape: both backfilling modes push the saturation point\n"
               "well past plain FCFS, similar to (or better than) capping the job\n"
               "size at 64; EASY avoids the starvation risk of aggressive.\n";
  return 0;
}
