// Fig. 2 — "The density of the service times for the largest DAS1 cluster".
//
// Prints the histogram of service times from the synthetic log (cut at
// 900 s, the DAS-t-900 construction) with the summary statistics the paper
// reports: the working-hours 15-minute kill limit and the share of jobs
// below it, plus the mean and CV of the cut distribution.
#include <iostream>

#include "bench_common.hpp"
#include "trace/synthetic_log.hpp"
#include "trace/trace_stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 2: density of DAS1 service times (synthetic log)");
  if (!options) return 0;

  SyntheticLogConfig config;
  config.num_jobs = std::max<std::uint64_t>(options->sim_jobs, 10000);
  config.seed = options->seed;
  const SwfTrace trace = generate_synthetic_das1_log(config);

  const auto raw_summary = summarize_trace(trace.records);
  const auto cut_records = cut_by_service(trace.records, 900.0);
  const auto cut_summary = summarize_trace(cut_records);
  const auto density = service_time_density(trace.records, 900.0, 30);

  std::cout << "== Fig. 2: service-time density, 30 s bins up to 900 s ==\n";
  std::cout << "raw log: mean " << format_double(raw_summary.mean_service, 1) << " s, cv "
            << format_double(raw_summary.service_cv, 2) << ", "
            << format_double(100.0 * raw_summary.fraction_under_15min, 1)
            << "% of jobs under 15 minutes (working-hours kill limit)\n";
  std::cout << "cut log (DAS-t-900): " << cut_summary.job_count << " jobs, mean "
            << format_double(cut_summary.mean_service, 1) << " s, cv "
            << format_double(cut_summary.service_cv, 2) << "\n";
  std::cout << "model DAS-t-900: mean " << format_double(das_t_900()->mean(), 1)
            << " s, cv " << format_double(das_t_900()->cv(), 2) << "\n\n";

  TextTable table({"service time (s)", "jobs", "fraction", "bar"});
  std::uint64_t max_count = 1;
  for (std::size_t b = 0; b < density.bin_count(); ++b) {
    max_count = std::max(max_count, density.bin(b));
  }
  for (std::size_t b = 0; b < density.bin_count(); ++b) {
    const auto bar_len = static_cast<std::size_t>(40.0 * static_cast<double>(density.bin(b)) /
                                                  static_cast<double>(max_count));
    table.add_row({format_double(density.bin_lo(b), 0) + "-" +
                       format_double(density.bin_hi(b), 0),
                   std::to_string(density.bin(b)), format_double(density.fraction(b), 4),
                   std::string(bar_len, '#')});
  }
  std::cout << table.render();
  std::cout << "\n(jobs beyond 900 s in the raw log: " << density.overflow()
            << "; the paper cuts these away for DAS-t-900)\n";
  return 0;
}
