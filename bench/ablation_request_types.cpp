// Ablation: request structures (ordered / unordered / flexible / total),
// the model dimension of the authors' earlier studies (refs [6,7]) that the
// paper fixes at "unordered". Each placement constraint costs packing
// opportunities, so the expected order (best to worst) is
//   flexible > unordered > ordered,
// with SC's total requests as the single-cluster reference.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Ablation: ordered vs unordered vs flexible requests under GS");
  if (!options) return 0;

  auto run_point = [&](RequestType type, double rho) {
    SimulationConfig config;
    config.policy = PolicyKind::kGS;
    config.cluster_sizes = {32, 32, 32, 32};
    config.workload.size_distribution = das_s_128();
    config.workload.service_distribution = das_t_900();
    config.workload.component_limit = 16;
    config.workload.num_clusters = 4;
    config.workload.extension_factor = das::kExtensionFactor;
    config.workload.request_type = type;
    config.workload.arrival_rate = config.workload.rate_for_gross_utilization(rho, 128);
    config.total_jobs = options->sim_jobs;
    config.seed = options->seed;
    return run_simulation(config);
  };

  std::cout << "== Ablation: request structure (GS, limit 16, DAS-s-128) ==\n\n";
  TextTable table({"gross util", "ordered (s)", "unordered (s)", "flexible (s)"});
  for (double rho : SweepConfig::grid(0.30, 0.75, 0.05)) {
    std::vector<std::string> row{format_util(rho)};
    for (RequestType type :
         {RequestType::kOrdered, RequestType::kUnordered, RequestType::kFlexible}) {
      const auto result = run_point(type, rho);
      row.push_back(result.unstable ? "-" : format_double(result.mean_response(), 1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nexpected shape: flexible <= unordered <= ordered at every load;\n"
               "ordered saturates first (placement constraints waste capacity).\n";
  return 0;
}
