// Engine microbenchmarks (google-benchmark): the DES calendar, placement
// rules (the WF/FF/BF ablation from DESIGN.md), distribution sampling, and
// end-to-end simulation throughput per policy.
#include <benchmark/benchmark.h>

#include "cluster/placement.hpp"
#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "obs/ring_recorder.hpp"
#include "obs/swf_builder.hpp"
#include "sim/calendar.hpp"
#include "util/rng.hpp"
#include "workload/das_workload.hpp"
#include "workload/job_splitter.hpp"

namespace {

using namespace mcsim;

void BM_CalendarPushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Calendar cal;
    for (std::size_t i = 0; i < batch; ++i) cal.push(rng.uniform(0.0, 1e6));
    while (!cal.empty()) benchmark::DoNotOptimize(cal.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CalendarPushPop)->Arg(256)->Arg(4096)->Arg(65536);

void BM_CalendarHold(benchmark::State& state) {
  // The classic "hold" model: steady-state push/pop on a part-full calendar.
  Rng rng(2);
  Calendar cal;
  for (int i = 0; i < 1024; ++i) cal.push(rng.uniform(0.0, 1000.0));
  double now = 0.0;
  for (auto _ : state) {
    const auto entry = cal.pop();
    now = entry.time;
    cal.push(now + rng.uniform(0.0, 1000.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarHold);

void BM_CalendarCancelHeavy(benchmark::State& state) {
  // The engine's real pop path: jobs schedule cancellable events (departure
  // guards, backfill reservations) and many get cancelled before they fire.
  // Each iteration pops one event, pushes two and cancels one of them, so
  // half of all heap entries are stale and both the cancel path and the
  // liveness check on pop are exercised; the calendar stays at 1024 live.
  Rng rng(7);
  Calendar cal;
  for (int i = 0; i < 1024; ++i) cal.push(rng.uniform(0.0, 1000.0));
  double now = 0.0;
  std::uint64_t cursor = 0;
  for (auto _ : state) {
    const auto entry = cal.pop();
    now = entry.time;
    const EventId a = cal.push(now + rng.uniform(0.0, 1000.0));
    const EventId b = cal.push(now + rng.uniform(0.0, 1000.0));
    cal.cancel((cursor & 1) != 0 ? a : b);
    ++cursor;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarCancelHeavy);

void BM_Placement(benchmark::State& state) {
  const auto rule = static_cast<PlacementRule>(state.range(0));
  Rng rng(3);
  std::vector<std::vector<std::uint32_t>> requests;
  for (int i = 0; i < 512; ++i) {
    const auto size = static_cast<std::uint32_t>(das_s_128().sample(rng));
    requests.push_back(split_job(size, 16, 4));
  }
  std::vector<std::uint32_t> idle{17, 3, 29, 11};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(place_components(requests[i % requests.size()], idle, rule));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Placement)
    ->Arg(static_cast<int>(PlacementRule::kWorstFit))
    ->Arg(static_cast<int>(PlacementRule::kFirstFit))
    ->Arg(static_cast<int>(PlacementRule::kBestFit));

void BM_SampleDasS128(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(das_s_128().sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleDasS128);

void BM_SampleDasT900(benchmark::State& state) {
  Rng rng(5);
  const auto dist = das_t_900();
  for (auto _ : state) benchmark::DoNotOptimize(dist->sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleDasT900);

void BM_EndToEndSimulation(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  std::uint64_t jobs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PaperScenario scenario;
    scenario.policy = policy;
    scenario.component_limit = 16;
    auto config = make_paper_config(scenario, 0.5, 5000, seed++);
    const auto result = run_simulation(config);
    benchmark::DoNotOptimize(result.mean_response());
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.SetLabel("jobs/s");
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(PolicyKind::kGS))
    ->Arg(static_cast<int>(PolicyKind::kLS))
    ->Arg(static_cast<int>(PolicyKind::kLP))
    ->Arg(static_cast<int>(PolicyKind::kSC))
    ->Unit(benchmark::kMillisecond);

// The observability zero-cost contract (BENCH_obs.json): BM_EngineHot is
// the engine with no sink attached — the body is BM_EndToEndSimulation's,
// duplicated so before/after comparisons have a stable name — and must
// stay within noise of the pre-observability baseline. BM_EngineTraced
// runs the full pipeline (ring recorder + SWF builder + metrics) and
// quantifies what tracing costs when you do ask for it.
void BM_EngineHot(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  std::uint64_t jobs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PaperScenario scenario;
    scenario.policy = policy;
    scenario.component_limit = 16;
    auto config = make_paper_config(scenario, 0.5, 5000, seed++);
    const auto result = run_simulation(config);
    benchmark::DoNotOptimize(result.mean_response());
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.SetLabel("jobs/s");
}
BENCHMARK(BM_EngineHot)
    ->Arg(static_cast<int>(PolicyKind::kGS))
    ->Arg(static_cast<int>(PolicyKind::kLS))
    ->Arg(static_cast<int>(PolicyKind::kLP))
    ->Arg(static_cast<int>(PolicyKind::kSC))
    ->Unit(benchmark::kMillisecond);

void BM_EngineTraced(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  std::uint64_t jobs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    PaperScenario scenario;
    scenario.policy = policy;
    scenario.component_limit = 16;
    auto config = make_paper_config(scenario, 0.5, 5000, seed++);
    MulticlusterSimulation simulation(config);
    obs::RingRecorder recorder;
    obs::SwfTraceBuilder builder;
    obs::MetricsRegistry metrics;
    recorder.add_emitter(
        [&builder](const obs::TraceEvent& event) { builder.record(event); });
    simulation.set_trace_sink(&recorder);
    simulation.set_metrics(&metrics);
    const auto result = simulation.run();
    benchmark::DoNotOptimize(result.mean_response());
    benchmark::DoNotOptimize(builder.trace().records.size());
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.SetLabel("jobs/s");
}
BENCHMARK(BM_EngineTraced)
    ->Arg(static_cast<int>(PolicyKind::kGS))
    ->Arg(static_cast<int>(PolicyKind::kLS))
    ->Unit(benchmark::kMillisecond);

// Placement-rule ablation at the system level: does WF vs FF/BF move the
// response time? (DESIGN.md ablation; the paper fixes WF.)
void BM_PlacementRuleAblation(benchmark::State& state) {
  const auto rule = static_cast<PlacementRule>(state.range(0));
  double response = 0.0;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    PaperScenario scenario;
    scenario.policy = PolicyKind::kLS;
    scenario.component_limit = 16;
    scenario.placement = rule;
    auto config = make_paper_config(scenario, 0.55, 5000, 77);
    const auto result = run_simulation(config);
    response = result.mean_response();
    jobs += result.completed_jobs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["mean_response_s"] = response;
}
BENCHMARK(BM_PlacementRuleAblation)
    ->Arg(static_cast<int>(PlacementRule::kWorstFit))
    ->Arg(static_cast<int>(PlacementRule::kFirstFit))
    ->Arg(static_cast<int>(PlacementRule::kBestFit))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
