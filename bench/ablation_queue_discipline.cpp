// Ablation: queue service order (extension; the paper fixes FCFS).
//
// The paper's Sect. 3.2 shows a few very large jobs dominate SC/GS
// performance under FCFS. Reordering the queue is the other classic lever:
// smallest-first and SJF sidestep the blocking (at a fairness cost),
// largest-first shows the anti-pattern.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Ablation: FCFS vs SJF vs smallest/largest-first (SC)");
  if (!options) return 0;

  auto run_point = [&](QueueDiscipline discipline, double rho) {
    PaperScenario scenario;
    scenario.policy = PolicyKind::kSC;
    auto config = make_paper_config(scenario, rho, options->sim_jobs, options->seed);
    config.discipline = discipline;
    return run_simulation(config);
  };

  std::cout << "== Ablation: queue discipline under SC (DAS-s-128) ==\n\n";
  TextTable table({"gross util", "FCFS (s)", "SJF (s)", "smallest-first (s)",
                   "largest-first (s)"});
  for (double rho : SweepConfig::grid(0.40, 0.80, 0.05)) {
    std::vector<std::string> row{format_util(rho)};
    for (QueueDiscipline discipline :
         {QueueDiscipline::kFcfs, QueueDiscipline::kShortestJobFirst,
          QueueDiscipline::kSmallestFirst, QueueDiscipline::kLargestFirst}) {
      const auto result = run_point(discipline, rho);
      row.push_back(result.unstable ? "-" : format_double(result.mean_response(), 1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();

  // Fairness counterpoint: SJF's mean hides the tail; show p95 too.
  std::cout << "\np95 response at utilization 0.60:\n";
  TextTable tail({"discipline", "mean (s)", "p95 (s)", "max (s)"});
  for (QueueDiscipline discipline :
       {QueueDiscipline::kFcfs, QueueDiscipline::kShortestJobFirst,
        QueueDiscipline::kSmallestFirst}) {
    const auto result = run_point(discipline, 0.60);
    if (result.unstable) continue;
    tail.add_row({queue_discipline_name(discipline),
                  format_double(result.mean_response(), 1),
                  format_double(result.response_p95, 1),
                  format_double(result.response_all.max(), 1)});
  }
  std::cout << tail.render();
  std::cout << "\nexpected: SJF/smallest-first cut the mean sharply but stretch the\n"
               "tail (large jobs starve); largest-first saturates earliest.\n";
  return 0;
}
