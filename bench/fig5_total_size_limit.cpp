// Fig. 5 — "The response times for maximal total job size 64 and 128
// (job-component-size limit 16, balanced local queues)".
//
// One panel, eight curves: the four policies under DAS-s-128 and under
// DAS-s-64 (the log cut at 64). Paper shape: the cut improves everything,
// most dramatically SC (no more full-system drains for 128-size heads),
// and LS's advantage over SC shrinks.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 5: effect of limiting the total job size to 64");
  if (!options) return 0;
  const auto sweep = bench::sweep_config(*options);
  bench::PanelSink sink(*options);

  std::cout << "== Fig. 5: DAS-s-64 vs DAS-s-128 (limit 16, balanced) ==\n\n";
  std::vector<SweepSeries> series;
  for (bool das64 : {true, false}) {
    for (PolicyKind policy :
         {PolicyKind::kSC, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kGS}) {
      PaperScenario scenario;
      scenario.policy = policy;
      scenario.component_limit = 16;
      scenario.limit_total_size_64 = das64;
      series.push_back(run_sweep(scenario, sweep));
    }
  }
  sink.emit("Fig. 5: total job size capped at 64 vs full DAS-s-128", series);
  return 0;
}
