// Fig. 3 — "The performance of the policies for job-component-size limits
// of 16, 24 and 32 (left-right); for LS and LP we depict results with
// balanced local queues (top) and unbalanced local queues (bottom)".
//
// Six panels: mean response time vs gross utilization for GS, LS, LP and
// the single-cluster SC baseline. Legends are printed best-first, matching
// the paper's right-to-left legend convention.
//
// Paper shape to look for: LS best multicluster policy at limit 16 (near or
// above SC); LP worst everywhere; unbalanced queues hurt LS markedly (at
// limit 32 LS drops below GS) and LP barely.
#include <iostream>

#include "bench_common.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 3: response time vs utilization, all policies x limits");
  if (!options) return 0;
  const auto sweep = bench::sweep_config(*options);
  bench::PanelSink sink(*options);

  std::cout << "== Fig. 3: policy comparison (DAS-s-128, extension factor 1.25) ==\n\n";
  for (bool balanced : {true, false}) {
    for (std::uint32_t limit : das::kComponentLimits) {
      std::vector<SweepSeries> series;
      for (PolicyKind policy :
           {PolicyKind::kLS, PolicyKind::kSC, PolicyKind::kGS, PolicyKind::kLP}) {
        PaperScenario scenario;
        scenario.policy = policy;
        scenario.component_limit = limit;
        // SC and GS have no local queues; the balance setting only affects
        // LS and LP (the paper reuses the SC/GS curves as references).
        scenario.balanced_queues =
            balanced || policy == PolicyKind::kSC || policy == PolicyKind::kGS;
        series.push_back(run_sweep(scenario, sweep));
      }
      sink.emit("Fig. 3 panel: limit " + std::to_string(limit) + ", " +
                    (balanced ? "balanced" : "unbalanced") + " local queues",
                series);
    }
  }
  return 0;
}
