// Fig. 6 — "The performance of LS, LP and GS (left-right) depending on the
// size limit of the job components. For LS and LP both the balanced (top)
// and unbalanced (bottom) cases are depicted".
//
// Five panels, each with the three component-size-limit curves {16,24,32}.
// Paper shape: limit 24 is the worst for every policy (the size-64 ->
// (22,21,21) packing argument); LS prefers 16 over 32; GS and LP slightly
// prefer 32 over 16.
#include <iostream>

#include "bench_common.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Fig. 6: effect of the job-component-size limit per policy");
  if (!options) return 0;
  const auto sweep = bench::sweep_config(*options);
  bench::PanelSink sink(*options);

  std::cout << "== Fig. 6: component-size limit {16, 24, 32} per policy ==\n\n";
  struct Panel {
    PolicyKind policy;
    bool balanced;
  };
  const Panel panels[] = {{PolicyKind::kLS, true},  {PolicyKind::kLP, true},
                          {PolicyKind::kGS, true},  {PolicyKind::kLS, false},
                          {PolicyKind::kLP, false}};
  for (const auto& panel : panels) {
    std::vector<SweepSeries> series;
    for (std::uint32_t limit : das::kComponentLimits) {
      PaperScenario scenario;
      scenario.policy = panel.policy;
      scenario.component_limit = limit;
      scenario.balanced_queues = panel.balanced;
      series.push_back(run_sweep(scenario, sweep));
    }
    sink.emit(std::string("Fig. 6 panel: ") + policy_name(panel.policy) +
                  (panel.balanced ? " (balanced)" : " (unbalanced)"),
              series);
  }
  return 0;
}
