// Table 2 — "The fractions of jobs with the different numbers of components
// for the DAS-s-128 distribution and the three job-component-size limits".
//
// The fractions follow directly from the size distribution and the splitter
// (exact sums), with a sampled column as a cross-check.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"
#include "workload/job_splitter.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const auto options = bench::parse_bench_options(
      argc, argv, "Table 2: fractions of jobs per number of components");
  if (!options) return 0;

  std::cout << "== Table 2: component-count fractions (DAS-s-128, 4 clusters) ==\n";
  std::cout << "paper row (limit 16): 0.513  0.267  0.009*  0.211  (*scan reads 0.090,\n";
  std::cout << "    but only 0.009 makes the row sum to 1; our reconstruction agrees)\n";
  std::cout << "paper row (limit 24): 0.738  0.051  0.194  0.017\n";
  std::cout << "paper row (limit 32): 0.780  0.200  0.003  0.017\n\n";

  TextTable table({"limit", "1 comp", "2 comps", "3 comps", "4 comps", "multi total"});
  for (std::uint32_t limit : das::kComponentLimits) {
    const auto fractions = component_count_fractions(das_s_128(), limit, 4);
    table.add_row({std::to_string(limit), format_util(fractions[0]),
                   format_util(fractions[1]), format_util(fractions[2]),
                   format_util(fractions[3]),
                   format_util(multi_component_fraction(das_s_128(), limit, 4))});
  }
  std::cout << "exact (from the reconstructed DAS-s-128):\n" << table.render() << '\n';

  // Sampled cross-check.
  TextTable sampled({"limit", "1 comp", "2 comps", "3 comps", "4 comps"});
  Rng rng(options->seed);
  const std::uint64_t samples = std::max<std::uint64_t>(options->sim_jobs, 50000);
  for (std::uint32_t limit : das::kComponentLimits) {
    std::array<std::uint64_t, 4> counts{};
    Rng local = rng;  // same draws for every limit
    for (std::uint64_t i = 0; i < samples; ++i) {
      const auto size = static_cast<std::uint32_t>(das_s_128().sample(local));
      ++counts[component_count(size, limit, 4) - 1];
    }
    std::vector<std::string> row{std::to_string(limit)};
    for (std::uint64_t count : counts) {
      row.push_back(format_util(static_cast<double>(count) / static_cast<double>(samples)));
    }
    sampled.add_row(std::move(row));
  }
  std::cout << "sampled (" << samples << " draws):\n" << sampled.render();

  std::cout << "\nsplit of the dominant size-64 job: limit 16 -> (16,16,16,16), "
               "limit 24 -> (22,21,21), limit 32 -> (32,32)\n";
  return 0;
}
